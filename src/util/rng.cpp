#include "util/rng.hpp"

#include <cmath>

#include "util/require.hpp"

namespace dqma::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below: bound must be positive");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::next_int: lo must not exceed hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  // Box-Muller. Draw u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng Rng::split() {
  return Rng(next_u64());
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  std::uint64_t z = base_seed + (job_index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace dqma::util

// Fixed-length binary strings: the input alphabet of every problem in the
// paper (EQ, GT, Hamming distance, XOR functions, ...).
//
// A Bitstring is a value type holding n bits (n up to millions); it supports
// the operations the protocols need: Hamming weight/distance, bitwise XOR,
// prefix extraction x[i] (used by the GT protocol of Sec. 5), integer
// comparison under the paper's big-endian convention (x = x_0 2^{n-1} + ...),
// and conversion to/from unsigned integers for small n.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dqma::util {

/// Immutable-size, mutable-content binary string of length n.
class Bitstring {
 public:
  /// Zero string of length n (n may be 0: the empty string, used as the
  /// "bottom" fingerprint input |⊥> in the GT protocol when the index is 0).
  explicit Bitstring(int n = 0);

  /// From a character string of '0'/'1'.
  static Bitstring from_string(const std::string& bits);

  /// Big-endian encoding of `value` into exactly n bits. Requires that
  /// value < 2^n.
  static Bitstring from_integer(std::uint64_t value, int n);

  /// Uniformly random n-bit string.
  static Bitstring random(int n, Rng& rng);

  /// Random string at exact Hamming distance d from `base`.
  static Bitstring random_at_distance(const Bitstring& base, int d, Rng& rng);

  int size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Bit accessors; index 0 is the most significant bit (paper convention
  /// x = x_0 x_1 ... x_{n-1} with x_0 weighted 2^{n-1}).
  bool get(int i) const;
  void set(int i, bool value);
  void flip(int i);

  /// Number of ones.
  int weight() const;

  /// Hamming distance to another string of the same length.
  int distance(const Bitstring& other) const;

  /// Bitwise XOR (same length required).
  Bitstring operator^(const Bitstring& other) const;

  /// Prefix x[i] = x_0 ... x_{i-1} (the paper's notation in Sec. 5.1).
  /// Requires 0 <= i <= size(). x[0] is the empty string.
  Bitstring prefix(int i) const;

  /// Value as an unsigned integer (requires size() <= 64).
  std::uint64_t to_integer() const;

  /// Numeric comparison under the big-endian convention. Works for any n
  /// (lexicographic comparison of equal-length strings equals numeric).
  int compare(const Bitstring& other) const;

  bool operator==(const Bitstring& other) const;
  bool operator!=(const Bitstring& other) const { return !(*this == other); }
  bool operator<(const Bitstring& other) const { return compare(other) < 0; }
  bool operator>(const Bitstring& other) const { return compare(other) > 0; }
  bool operator<=(const Bitstring& other) const { return compare(other) <= 0; }
  bool operator>=(const Bitstring& other) const { return compare(other) >= 0; }

  std::string to_string() const;

  /// Stable 64-bit hash (FNV-1a over the packed words), used by fooling-set
  /// tables and deduplication in the lower-bound searches.
  std::uint64_t hash() const;

  /// Packed words: bit i lives in words()[i / 64] at position i % 64; bits
  /// beyond size() are zero. Word-level consumers (Gf2Matrix::from_bits)
  /// read these instead of probing bit by bit.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  int n_ = 0;
  std::vector<std::uint64_t> words_;  // bit i lives in words_[i/64] bit (i%64)

  int word_count() const { return static_cast<int>(words_.size()); }
  void mask_tail();
};

}  // namespace dqma::util

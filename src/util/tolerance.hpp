// Centralized numerical tolerances (DESIGN.md Sec. 5).
#pragma once

namespace dqma::util {

/// Tolerance for algebraic identities (unitarity checks, trace == 1, ...).
inline constexpr double kAlgebraTol = 1e-9;

/// Looser tolerance for iteratively computed quantities (eigenvalues,
/// trace norms) where O(dim) rounding accumulates.
inline constexpr double kSpectralTol = 1e-7;

/// Default convergence threshold for the Jacobi eigensolver: *squared*
/// off-diagonal Frobenius mass below this value terminates the sweep loop
/// (so residual off-diagonal entries are ~1e-11; convergence is quadratic,
/// making the extra sweeps cheap).
inline constexpr double kJacobiTol = 1e-22;

/// Maximum global Hilbert-space dimension the exact density-matrix engine
/// accepts (DESIGN.md Sec. 5). 2^14 keeps a single dense matrix under 4 GiB.
inline constexpr int kMaxExactDim = 1 << 14;

}  // namespace dqma::util

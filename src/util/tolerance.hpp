// Centralized numerical tolerances (DESIGN.md Sec. 5).
#pragma once

namespace dqma::util {

/// Tolerance for algebraic identities (unitarity checks, trace == 1, ...).
inline constexpr double kAlgebraTol = 1e-9;

/// Looser tolerance for iteratively computed quantities (eigenvalues,
/// trace norms) where O(dim) rounding accumulates.
inline constexpr double kSpectralTol = 1e-7;

/// Default convergence threshold for the Jacobi eigensolver: *squared*
/// off-diagonal Frobenius mass below this value terminates the sweep loop
/// (so residual off-diagonal entries are ~1e-11; convergence is quadratic,
/// making the extra sweeps cheap).
inline constexpr double kJacobiTol = 1e-22;

/// Maximum global Hilbert-space dimension the exact engine accepts. Raised
/// from 2^14 to 2^18 with the matrix-free local-operator layer
/// (quantum/local_ops.hpp): state-vector passes and structured acceptance
/// operators scale O(D * b) and never materialize a D x D embedding, so the
/// cap is now bounded by state-vector memory (2^18 amplitudes = 4 MiB), not
/// by a dense matrix. Code paths that do materialize dense operators guard
/// themselves with kMaxDenseExactDim (or their own tighter bound, e.g.
/// ExactEqPathAnalyzer::kMaxDenseProofDim).
inline constexpr int kMaxExactDim = 1 << 18;

/// Maximum dimension for code paths that materialize a dense D x D matrix
/// (density operators, amplified QMA instances): 2^14 keeps a single dense
/// complex matrix under 4 GiB — the bound kMaxExactDim itself enforced
/// before the matrix-free engine.
inline constexpr int kMaxDenseExactDim = 1 << 14;

/// Maximum dimension for dense density operators when the memory-mapped
/// scratch path is enabled (util/scratch.hpp): storage lives in an unlinked
/// scratch file streamed through the page cache by row panels, so the bound
/// is scratch-disk capacity (2^15 is a 16 GiB tile), not resident memory.
/// Without scratch the guard stays at kMaxDenseExactDim.
inline constexpr int kMaxTiledDenseDim = 1 << 15;

}  // namespace dqma::util

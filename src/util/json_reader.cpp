#include "util/json_reader.hpp"

#include <charconv>
#include <cstddef>
#include <limits>
#include <system_error>

#include "util/require.hpp"

namespace dqma::util::json {
namespace {

/// Corrupt input must not overflow the recursive-descent stack; the
/// trajectory schema is 5 levels deep, so 64 is generous.
constexpr int kMaxDepth = 64;

}  // namespace

bool Node::as_bool() const {
  require(kind_ == Kind::kBool, "json::Node::as_bool: not a boolean");
  return bool_;
}

long long Node::as_int() const {
  require(kind_ == Kind::kInt, "json::Node::as_int: not an int64 integer");
  return int_;
}

std::uint64_t Node::as_uint() const {
  if (kind_ == Kind::kUint) {
    return uint_;
  }
  require(kind_ == Kind::kInt && int_ >= 0,
          "json::Node::as_uint: not a non-negative integer");
  return static_cast<std::uint64_t>(int_);
}

double Node::as_double() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      require(false, "json::Node::as_double: not a number");
      return 0.0;
  }
}

const std::string& Node::as_string() const {
  require(kind_ == Kind::kString, "json::Node::as_string: not a string");
  return string_;
}

const std::vector<Node>& Node::items() const {
  require(kind_ == Kind::kArray, "json::Node::items: not an array");
  return items_;
}

const std::vector<std::pair<std::string, Node>>& Node::members() const {
  require(kind_ == Kind::kObject, "json::Node::members: not an object");
  return members_;
}

const Node* Node::find(std::string_view key) const {
  require(kind_ == Kind::kObject, "json::Node::find: not an object");
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const Node& Node::at(std::string_view key) const {
  const Node* node = find(key);
  require(node != nullptr,
          "json::Node::at: missing member '" + std::string(key) + "'");
  return *node;
}

/// Recursive-descent parser over a string_view; tracks the byte offset for
/// error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Node parse_document() {
    Node node = parse_value(0);
    skip_whitespace();
    fail_unless(pos_ == text_.size(), "trailing characters after document");
    return node;
  }

  Node parse_one(std::size_t& offset) {
    pos_ = offset;
    Node node = parse_value(0);
    skip_whitespace();
    offset = pos_;
    return node;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    require(false, "json::parse: " + what + " at byte " +
                       std::to_string(pos_));
    // require(false, ...) always throws; keep the compiler convinced.
    throw std::invalid_argument("unreachable");
  }

  void fail_unless(bool condition, const char* what) const {
    if (!condition) {
      fail(what);
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }

  char peek() const {
    fail_unless(!at_end(), "unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  void expect_literal(std::string_view literal) {
    fail_unless(text_.substr(pos_, literal.size()) == literal,
                "invalid literal");
    pos_ += literal.size();
  }

  Node parse_value(int depth) {
    fail_unless(depth < kMaxDepth, "nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        Node node;
        node.kind_ = Node::Kind::kString;
        node.string_ = parse_string();
        return node;
      }
      case 't': {
        expect_literal("true");
        Node node;
        node.kind_ = Node::Kind::kBool;
        node.bool_ = true;
        return node;
      }
      case 'f': {
        expect_literal("false");
        Node node;
        node.kind_ = Node::Kind::kBool;
        node.bool_ = false;
        return node;
      }
      case 'n':
        expect_literal("null");
        return Node();
      default:
        return parse_number();
    }
  }

  Node parse_object(int depth) {
    take();  // '{'
    Node node;
    node.kind_ = Node::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      take();
      return node;
    }
    while (true) {
      skip_whitespace();
      fail_unless(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_whitespace();
      fail_unless(take() == ':', "expected ':' after object key");
      node.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == '}') {
        return node;
      }
      fail_unless(c == ',', "expected ',' or '}' in object");
    }
  }

  Node parse_array(int depth) {
    take();  // '['
    Node node;
    node.kind_ = Node::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      take();
      return node;
    }
    while (true) {
      node.items_.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == ']') {
        return node;
      }
      fail_unless(c == ',', "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    take();  // '"'
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = take();
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          append_utf8(out, parse_code_point());
          break;
        default:
          fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  /// One \uXXXX escape already consumed up to the 'u'; returns the code
  /// point, consuming the trailing surrogate of a pair when present.
  unsigned parse_code_point() {
    const unsigned first = parse_hex4();
    if (first < 0xD800 || first > 0xDFFF) {
      return first;
    }
    fail_unless(first < 0xDC00, "unpaired trailing surrogate");
    fail_unless(!at_end() && take() == '\\' && !at_end() && take() == 'u',
                "unpaired leading surrogate");
    const unsigned second = parse_hex4();
    fail_unless(second >= 0xDC00 && second <= 0xDFFF,
                "invalid trailing surrogate");
    return 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Node parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (!at_end() && text_[pos_] == '-') {
      ++pos_;
    }
    // RFC 8259: int part is 0 or a nonzero-led digit run (no leading
    // zeros).
    fail_unless(!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9',
                "invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
      fail_unless(at_end() || text_[pos_] < '0' || text_[pos_] > '9',
                  "leading zero in number");
    } else {
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (!at_end() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      fail_unless(!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9',
                  "digit required after decimal point");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      fail_unless(!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9',
                  "digit required in exponent");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    const char* first = token.data();
    const char* last = token.data() + token.size();
    Node node;
    if (integral) {
      // int64 first (the writer's common case), then uint64 for seeds and
      // job keys above INT64_MAX.
      long long as_int = 0;
      auto [int_end, int_ec] = std::from_chars(first, last, as_int);
      if (int_ec == std::errc() && int_end == last) {
        node.kind_ = Node::Kind::kInt;
        node.int_ = as_int;
        return node;
      }
      if (token[0] != '-') {
        std::uint64_t as_uint = 0;
        auto [uint_end, uint_ec] = std::from_chars(first, last, as_uint);
        if (uint_ec == std::errc() && uint_end == last) {
          node.kind_ = Node::Kind::kUint;
          node.uint_ = as_uint;
          return node;
        }
      }
      fail("integer out of range");
    }
    double as_double = 0.0;
    auto [double_end, double_ec] = std::from_chars(first, last, as_double);
    // Overflow to infinity is out-of-range for from_chars; everything the
    // writer emits is finite, so reject rather than saturate.
    fail_unless(double_ec == std::errc() && double_end == last,
                "number out of range");
    node.kind_ = Node::Kind::kDouble;
    node.double_ = as_double;
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Node parse(std::string_view text) { return Parser(text).parse_document(); }

Node parse_value(std::string_view text, std::size_t& offset) {
  return Parser(text).parse_one(offset);
}

}  // namespace dqma::util::json

// Lightweight precondition checking used throughout the library.
//
// Following the C++ Core Guidelines (I.5, I.6: state and check preconditions)
// we fail fast with an informative exception rather than silently proceeding.
#pragma once

#include <stdexcept>
#include <string>

namespace dqma::util {

/// Throws std::invalid_argument with `message` if `condition` is false.
///
/// Used to validate function preconditions (argument ranges, dimension
/// agreement, ...). The cost is a branch; none of the hot inner loops in the
/// simulators call it per-element.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw std::invalid_argument(message);
  }
}

/// Throws std::logic_error: used for internal invariants that indicate a bug
/// in this library (as opposed to a caller error).
inline void ensure(bool condition, const std::string& message) {
  if (!condition) {
    throw std::logic_error(message);
  }
}

}  // namespace dqma::util

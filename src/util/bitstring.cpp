#include "util/bitstring.hpp"

#include <algorithm>
#include <bit>

#include "util/require.hpp"

namespace dqma::util {

Bitstring::Bitstring(int n) : n_(n) {
  require(n >= 0, "Bitstring: length must be non-negative");
  words_.assign(static_cast<std::size_t>((n + 63) / 64), 0);
}

Bitstring Bitstring::from_string(const std::string& bits) {
  Bitstring out(static_cast<int>(bits.size()));
  for (int i = 0; i < out.n_; ++i) {
    const char c = bits[static_cast<std::size_t>(i)];
    require(c == '0' || c == '1', "Bitstring::from_string: invalid character");
    out.set(i, c == '1');
  }
  return out;
}

Bitstring Bitstring::from_integer(std::uint64_t value, int n) {
  require(n >= 0 && n <= 64, "Bitstring::from_integer: n must be in [0,64]");
  if (n < 64) {
    require(value < (1ULL << n), "Bitstring::from_integer: value needs more than n bits");
  }
  Bitstring out(n);
  for (int i = 0; i < n; ++i) {
    // Bit 0 is most significant.
    out.set(i, ((value >> (n - 1 - i)) & 1ULL) != 0);
  }
  return out;
}

Bitstring Bitstring::random(int n, Rng& rng) {
  Bitstring out(n);
  for (auto& w : out.words_) {
    w = rng.next_u64();
  }
  out.mask_tail();
  return out;
}

Bitstring Bitstring::random_at_distance(const Bitstring& base, int d, Rng& rng) {
  require(d >= 0 && d <= base.size(),
          "Bitstring::random_at_distance: d out of range");
  Bitstring out = base;
  // Floyd's algorithm for sampling d distinct positions.
  std::vector<int> chosen;
  chosen.reserve(static_cast<std::size_t>(d));
  for (int j = base.size() - d; j < base.size(); ++j) {
    const int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  for (const int pos : chosen) {
    out.flip(pos);
  }
  return out;
}

bool Bitstring::get(int i) const {
  require(i >= 0 && i < n_, "Bitstring::get: index out of range");
  return (words_[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1ULL;
}

void Bitstring::set(int i, bool value) {
  require(i >= 0 && i < n_, "Bitstring::set: index out of range");
  const std::uint64_t mask = 1ULL << (i % 64);
  auto& w = words_[static_cast<std::size_t>(i / 64)];
  if (value) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

void Bitstring::flip(int i) {
  require(i >= 0 && i < n_, "Bitstring::flip: index out of range");
  words_[static_cast<std::size_t>(i / 64)] ^= 1ULL << (i % 64);
}

int Bitstring::weight() const {
  int total = 0;
  for (const auto w : words_) {
    total += std::popcount(w);
  }
  return total;
}

int Bitstring::distance(const Bitstring& other) const {
  require(n_ == other.n_, "Bitstring::distance: length mismatch");
  int total = 0;
  for (std::size_t k = 0; k < words_.size(); ++k) {
    total += std::popcount(words_[k] ^ other.words_[k]);
  }
  return total;
}

Bitstring Bitstring::operator^(const Bitstring& other) const {
  require(n_ == other.n_, "Bitstring::operator^: length mismatch");
  Bitstring out(n_);
  for (std::size_t k = 0; k < words_.size(); ++k) {
    out.words_[k] = words_[k] ^ other.words_[k];
  }
  return out;
}

Bitstring Bitstring::prefix(int i) const {
  require(i >= 0 && i <= n_, "Bitstring::prefix: length out of range");
  Bitstring out(i);
  for (int k = 0; k < i; ++k) {
    out.set(k, get(k));
  }
  return out;
}

std::uint64_t Bitstring::to_integer() const {
  require(n_ <= 64, "Bitstring::to_integer: string longer than 64 bits");
  std::uint64_t value = 0;
  for (int i = 0; i < n_; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(get(i));
  }
  return value;
}

int Bitstring::compare(const Bitstring& other) const {
  require(n_ == other.n_, "Bitstring::compare: length mismatch");
  for (int i = 0; i < n_; ++i) {
    const bool a = get(i);
    const bool b = other.get(i);
    if (a != b) {
      return a ? 1 : -1;
    }
  }
  return 0;
}

bool Bitstring::operator==(const Bitstring& other) const {
  return n_ == other.n_ && words_ == other.words_;
}

std::string Bitstring::to_string() const {
  std::string out(static_cast<std::size_t>(n_), '0');
  for (int i = 0; i < n_; ++i) {
    if (get(i)) {
      out[static_cast<std::size_t>(i)] = '1';
    }
  }
  return out;
}

std::uint64_t Bitstring::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<std::uint64_t>(n_);
  for (const auto w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void Bitstring::mask_tail() {
  const int tail = n_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

}  // namespace dqma::util

#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace dqma::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "Table::add_row: cell count does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt(int v) { return std::to_string(v); }
std::string Table::fmt(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& description) {
  os << '\n'
     << "==== " << experiment << " ====\n"
     << description << '\n'
     << '\n';
}

}  // namespace dqma::util

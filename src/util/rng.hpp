// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (Monte-Carlo protocol runs,
// random codes, Haar-random states, adversarial search) draws from a
// dqma::util::Rng seeded explicitly by the caller, so all tests and
// benchmarks are reproducible bit-for-bit (DESIGN.md Sec. 5).
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
// so that small consecutive seeds yield decorrelated streams. `split()`
// derives an independent child stream, which lets parallel sweeps own
// private generators without sharing mutable state.
#pragma once

#include <cstdint>
#include <limits>

namespace dqma::util {

/// xoshiro256++ PRNG with SplitMix64 seeding and stream splitting.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Distinct seeds (even
  /// consecutive ones) produce statistically independent streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (usable with <random> distributions).
  result_type operator()() { return next_u64(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Standard normal variate (Box-Muller; one value per call, no caching so
  /// the stream position stays deterministic across platforms).
  double next_gaussian();

  /// Derives an independent child generator. The parent stream advances by
  /// one draw; the child is seeded from that draw through SplitMix64.
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Derives the seed of job `job_index` in a sweep rooted at `base_seed`.
///
/// The parallel sweep engine (src/sweep/) seeds every job's private Rng
/// with derive_seed(base_seed, job_index), so results are bit-identical
/// regardless of how many threads execute the sweep or in which order the
/// jobs run.
///
/// Definition (pinned by tests/determinism_test.cpp — changing it silently
/// reshuffles every recorded benchmark trajectory):
///   state  = base_seed + (job_index + 1) * 0x9e3779b97f4a7c15  (mod 2^64)
///   result = mix(mix(state))
/// where mix is the SplitMix64 output scrambler
///   z ^= z >> 30; z *= 0xbf58476d1ce4e5b9;
///   z ^= z >> 27; z *= 0x94d049bb133111eb;
///   z ^= z >> 31;
/// i.e. job i is seeded from the (i+1)-th state of the SplitMix64 sequence
/// started at base_seed, scrambled twice so that neighbouring indices give
/// decorrelated xoshiro initializations.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index);

}  // namespace dqma::util

// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (Monte-Carlo protocol runs,
// random codes, Haar-random states, adversarial search) draws from a
// dqma::util::Rng seeded explicitly by the caller, so all tests and
// benchmarks are reproducible bit-for-bit (DESIGN.md Sec. 5).
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
// so that small consecutive seeds yield decorrelated streams. `split()`
// derives an independent child stream, which lets parallel sweeps own
// private generators without sharing mutable state.
#pragma once

#include <cstdint>
#include <limits>

namespace dqma::util {

/// xoshiro256++ PRNG with SplitMix64 seeding and stream splitting.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Distinct seeds (even
  /// consecutive ones) produce statistically independent streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (usable with <random> distributions).
  result_type operator()() { return next_u64(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Standard normal variate (Box-Muller; one value per call, no caching so
  /// the stream position stays deterministic across platforms).
  double next_gaussian();

  /// Derives an independent child generator. The parent stream advances by
  /// one draw; the child is seeded from that draw through SplitMix64.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dqma::util

// Deterministic fault injection for crash-tolerance tests.
//
// The layer is compiled in always and armed through the DQMA_FAULT
// environment variable; when the variable is unset every probe is a single
// relaxed atomic load, so production paths pay nothing. A spec is a
// comma-separated list of clauses
//
//   [site:]action[:arg]
//
// where `site` narrows the clause to one instrumented subsystem
// (checkpoint, lease, scratch, serve; omitted = every site) and `action`
// is one of
//
//   crash_after:N   _exit(137) on the N-th matching probe (SIGKILL-style:
//                   no destructors, no atexit, buffers not flushed)
//   stall:MS        sleep MS milliseconds at every matching probe
//   torn_write      tear the next matching write: the caller persists a
//                   strict prefix of the record, then crashes
//   enospc          every matching allocation fails as if the disk were full
//
// Examples: DQMA_FAULT=lease:crash_after:25 kills a coordinated worker in
// the middle of its 25th lease-protocol step; DQMA_FAULT=checkpoint:torn_write
// leaves a half-written JSONL line for the resume path to tolerate.
//
// Instrumented code calls point() at protocol steps (crash_after / stall
// fire there), asks should_tear() before durable writes, and
// should_fail_alloc() before reserving disk space. Probe counters are
// process-wide and thread-safe; which concurrent probe hits N is scheduling
// dependent, which is the point — recovery must be byte-exact for any kill
// schedule.
#pragma once

namespace dqma::util::fault {

enum class Site { kCheckpoint = 0, kLease, kScratch, kServe };

/// Probe at a protocol step: may stall, may never return (crash_after).
void point(Site site);

/// True when the next durable write at `site` should be torn. The caller
/// writes a strict prefix of the record, flushes it, then calls
/// crash_now() — the torn record must be observable by the recovery path.
bool should_tear(Site site);

/// True when a disk allocation at `site` should fail as if ENOSPC.
bool should_fail_alloc(Site site);

/// Immediate SIGKILL-style process exit (status 137), skipping destructors
/// and atexit handlers. Used by torn-write call sites after the partial
/// flush; exposed so tests can assert on the exit status.
[[noreturn]] void crash_now();

/// True when DQMA_FAULT is set and parsed to at least one clause.
bool armed();

/// Re-parses the given spec in place of the environment (nullptr or ""
/// disarms). Test-only: call while no other thread is probing.
void reset_for_test(const char* spec);

}  // namespace dqma::util::fault

// Dense matrices over GF(2) with rank computation: the substrate of the
// paper's F_q-rank predicate (Definition 15 / Corollary 41, q = 2) and of
// the random-sketch one-way protocol for it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace dqma::util {

/// A rows x cols matrix over GF(2), rows packed into 64-bit words.
class Gf2Matrix {
 public:
  Gf2Matrix() = default;
  Gf2Matrix(int rows, int cols);

  static Gf2Matrix identity(int n);
  static Gf2Matrix random(int rows, int cols, Rng& rng);

  /// Random matrix of exact rank `r` (product of random full-rank-ish
  /// factors; retries until the rank is exact).
  static Gf2Matrix random_of_rank(int n, int r, Rng& rng);

  /// Row-major bit encoding round trip (inputs of the rank predicate).
  static Gf2Matrix from_bits(const Bitstring& bits, int rows, int cols);
  Bitstring to_bits() const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  bool get(int i, int j) const;
  void set(int i, int j, bool v);

  /// Entrywise XOR (the GF(2) matrix sum X + Y of Definition 15).
  Gf2Matrix operator^(const Gf2Matrix& other) const;

  /// Matrix product over GF(2).
  Gf2Matrix operator*(const Gf2Matrix& other) const;

  /// Rank by Gaussian elimination on a working copy.
  int rank() const;

  bool operator==(const Gf2Matrix& other) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  int words_per_row_ = 0;
  std::vector<std::uint64_t> w_;

  std::uint64_t& word(int i, int k) {
    return w_[static_cast<std::size_t>(i) *
                  static_cast<std::size_t>(words_per_row_) +
              static_cast<std::size_t>(k)];
  }
  const std::uint64_t& word(int i, int k) const {
    return w_[static_cast<std::size_t>(i) *
                  static_cast<std::size_t>(words_per_row_) +
              static_cast<std::size_t>(k)];
  }
};

}  // namespace dqma::util

// A dependency-free JSON reader — the counterpart of the write-only
// builder in src/sweep/json.hpp. The repo historically never parsed JSON
// (CI tooling did); sharded sweep execution changed that: shard merging,
// checkpoint resume, and the baseline-comparison gate all have to read the
// schema_version-1 trajectory documents (and the JSONL checkpoint lines)
// back in.
//
// Design constraints, matching the writer:
//   * zero external dependencies (the container bans new packages);
//   * exact numeric round-trips — an integer parses back as an integer, a
//     double written in shortest round-trip form parses back to the
//     identical bits, and a uint64 above INT64_MAX (seeds, job keys) is
//     preserved — so parse -> re-serialize reproduces the writer's bytes;
//   * strict RFC 8259 grammar (no comments, no trailing commas, no bare
//     NaN/Infinity) with informative errors carrying the byte offset, so a
//     truncated checkpoint line or a hand-edited baseline fails loudly.
//
// util/ sits below sweep/ in the layering, so the reader exposes its own
// small document type instead of sweep::Json; sweep/trajectory.hpp maps
// parsed nodes onto the trajectory model.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dqma::util::json {

/// A parsed JSON value. Object members keep document order (the writer
/// emits insertion-ordered objects; preserving order is what makes
/// parse -> re-serialize byte-stable).
class Node {
 public:
  enum class Kind {
    kNull,
    kBool,
    kInt,     ///< integral literal representable as long long
    kUint,    ///< integral literal above INT64_MAX (seeds, job keys)
    kDouble,  ///< literal with a fraction or exponent
    kString,
    kArray,
    kObject
  };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  /// True only for integral literals (no fraction/exponent in the source).
  bool is_integer() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; require() the exact kind (numeric accessors accept
  /// any representable numeric kind).
  bool as_bool() const;
  long long as_int() const;
  /// Any non-negative integral value, including the kUint range.
  std::uint64_t as_uint() const;
  /// Any numeric value, widened to double.
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<Node>& items() const;
  const std::vector<std::pair<std::string, Node>>& members() const;

  /// Object member lookup (first match, document order); nullptr if the
  /// key is absent. require()s object kind.
  const Node* find(std::string_view key) const;
  /// Like find(), but require()s the key to exist.
  const Node& at(std::string_view key) const;

  // Construction is internal to the parser.
  Node() = default;

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  long long int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Node> items_;
  std::vector<std::pair<std::string, Node>> members_;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
/// Throws std::invalid_argument (via util::require) with the byte offset
/// on malformed input. Nesting is capped at a depth of 64 (the trajectory
/// schema needs 5) so corrupt input cannot overflow the parser stack.
Node parse(std::string_view text);

/// Parses one JSON value starting at `text[offset]` and advances `offset`
/// past it (plus surrounding whitespace). The JSONL checkpoint reader uses
/// this to consume a stream of newline-delimited documents.
Node parse_value(std::string_view text, std::size_t& offset);

}  // namespace dqma::util::json

// Memory-mapped scratch buffers for out-of-core dense passes.
//
// A ScratchTile is an anonymous (unlinked) file in the configured scratch
// directory, sized with ftruncate (so untouched pages are holes) and mapped
// MAP_SHARED. Dense density-operator storage above the in-core cap lives in
// one of these: row panels stream through the page cache instead of
// requiring a full O(D^2) resident allocation, and the kernel writes cold
// panels back to disk under memory pressure.
//
// Scratch is an explicit opt-in: the --scratch CLI flag or the
// DQMA_SCRATCH_DIR environment variable names the directory (a fast local
// filesystem; the file is unlinked at creation so crashes leak nothing).
// When neither is set, enabled() is false and tiled paths refuse to run.
#pragma once

#include <stdexcept>
#include <string>

namespace dqma::util {

/// Thrown when a configured scratch directory cannot actually hold a tile
/// (ftruncate/mmap failure — typically ENOSPC). Distinct from the
/// std::invalid_argument raised for a missing configuration so callers can
/// degrade gracefully: fall back to in-core storage when the operand fits,
/// or fail the single job instead of the whole run.
class ScratchAllocationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ScratchTile {
 public:
  /// Creates and maps a zero-filled scratch buffer of `bytes` bytes.
  /// Throws when scratch is not enabled or the file cannot be created.
  explicit ScratchTile(long long bytes);
  ~ScratchTile();
  ScratchTile(const ScratchTile&) = delete;
  ScratchTile& operator=(const ScratchTile&) = delete;

  void* data() { return map_; }
  const void* data() const { return map_; }
  long long size_bytes() const { return bytes_; }

  /// True when a scratch directory is configured and tiled passes may run.
  static bool enabled();
  /// The configured scratch directory ("" when disabled).
  static std::string directory();
  /// Overrides the scratch directory ("" disables). The --scratch CLI flag
  /// and tests route through this; an override wins over the environment
  /// variable. Call at startup (not concurrently with tile creation).
  static void set_directory(std::string dir);

 private:
  void* map_ = nullptr;
  long long bytes_ = 0;
};

}  // namespace dqma::util

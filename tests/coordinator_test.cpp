// Crash-tolerant elastic sweeps (sweep/coordinator.hpp and the dqma_bench
// --coordinate glue): lease lifecycle, torn-marker and stale-worker
// reclaim, eviction fencing, the ordered-trust convergence rule, and the
// end-to-end gate — any worker count, any kill schedule, the merge of all
// finalized workers is byte-identical to the monolithic run.
//
// Worker processes are spawned by re-exec'ing THIS binary with
// --worker-main (fork+execve immediately, safe despite the kernel-pool
// threads an in-process cli_main run leaves behind), so crash injection
// via DQMA_FAULT kills a real process mid-protocol exactly like a lost
// host would.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/coordinator.hpp"
#include "sweep/registry.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using dqma::sweep::Coordinator;
using dqma::sweep::Metrics;
using dqma::sweep::ParamGrid;
using dqma::sweep::ParamPoint;
using dqma::sweep::SweepPolicy;
using dqma::sweep::WorkerEvicted;
using dqma::util::Rng;
using Claim = Coordinator::Claim;

/// Small registry covering every recording mode the coordinator must
/// partition: partitioned/replicated/grouped sweeps, serial_sweep, ad-hoc
/// records and owns_next_record/record_owned loops.
void register_fake_experiments() {
  static const bool once = [] {
    dqma::sweep::register_experiment(
        {"elastic_alpha", "partitioned + replicated series",
         [](dqma::sweep::ExperimentContext& ctx) {
           ParamGrid grid;
           grid.axis("x", std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7});
           const auto results = ctx.sweep(
               "grid", grid.enumerate(), [](const ParamPoint& p, Rng& rng) {
                 return Metrics()
                     .set("value", static_cast<double>(p.get_int("x")) +
                                       rng.next_double())
                     .set("draws",
                          static_cast<long long>(rng.next_below(1000)));
               });
           (void)results;

           ParamGrid cheap;
           cheap.axis("n", std::vector<int>{8, 16, 32});
           const auto cheap_points = cheap.enumerate();
           const auto cheap_results = ctx.sweep(
               "cheap", cheap_points,
               [](const ParamPoint& p, Rng&) {
                 return Metrics().set("cost", 3 * p.get_int("n"));
               },
               SweepPolicy::replicate());
           const double base =
               static_cast<double>(cheap_results[0].metrics.get_int("cost"));
           for (std::size_t i = 0; i < cheap_points.size(); ++i) {
             ctx.record(
                 "cheap_ratio",
                 ParamPoint().set("n", cheap_points[i].get_int("n")),
                 Metrics().set(
                     "ratio",
                     static_cast<double>(
                         cheap_results[i].metrics.get_int("cost")) /
                         base));
           }

           for (int i = 0; i < 4; ++i) {
             if (!ctx.owns_next_record("inline")) {
               ctx.skip_record("inline");
               continue;
             }
             Rng rng = ctx.point_rng("inline", static_cast<std::size_t>(i));
             ctx.record_owned("inline", ParamPoint().set("i", i),
                              Metrics().set("draw", rng.next_double()));
           }
         }});

    dqma::sweep::register_experiment(
        {"elastic_beta", "grouped series + reduce, serial_sweep",
         [](dqma::sweep::ExperimentContext& ctx) {
           std::vector<ParamPoint> points;
           for (int cfg = 0; cfg < 3; ++cfg) {
             for (int chunk = 0; chunk < 3; ++chunk) {
               points.push_back(
                   ParamPoint().set("cfg", cfg).set("chunk", chunk));
             }
           }
           const auto results = ctx.sweep(
               "chunks", points,
               [](const ParamPoint& p, Rng& rng) {
                 return Metrics().set(
                     "mean", 0.1 * static_cast<double>(p.get_int("cfg")) +
                                 0.01 * rng.next_double());
               },
               SweepPolicy::group_by("cfg"));
           for (int cfg = 0; cfg < 3; ++cfg) {
             const std::size_t base = static_cast<std::size_t>(3 * cfg);
             if (results[base].skipped) {
               ctx.skip_record("combined");
               continue;
             }
             double sum = 0.0;
             for (std::size_t c = 0; c < 3; ++c) {
               sum += results[base + c].metrics.get_double("mean");
             }
             ctx.record_owned("combined", ParamPoint().set("cfg", cfg),
                              Metrics().set("mean", sum / 3.0));
           }

           std::vector<ParamPoint> serial_points;
           serial_points.push_back(ParamPoint().set("d", 4));
           serial_points.push_back(ParamPoint().set("d", 6));
           ctx.serial_sweep("serial", serial_points,
                            [](const ParamPoint& p, Rng& rng) {
                              return Metrics().set(
                                  "v", p.get_int("d") + rng.next_double());
                            });
         }});
    return true;
  }();
  (void)once;
}

int run_cli(const std::vector<std::string>& args) {
  register_fake_experiments();
  std::vector<const char*> argv{"dqma_bench"};
  for (const std::string& arg : args) {
    argv.push_back(arg.c_str());
  }
  return dqma::sweep::cli_main(static_cast<int>(argv.size()), argv.data());
}

std::string self_exe() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) {
    throw std::runtime_error("readlink /proc/self/exe failed");
  }
  return std::string(buffer, static_cast<std::size_t>(n));
}

/// Spawns this binary as a worker process (`--worker-main <cli args...>`)
/// with DQMA_FAULT=`fault` in its environment; returns the pid.
pid_t spawn_worker(const std::vector<std::string>& args,
                   const std::string& fault = "") {
  static const std::string exe = self_exe();
  std::vector<std::string> store{exe, "--worker-main"};
  store.insert(store.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(store.size() + 1);
  for (std::string& arg : store) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);

  std::vector<std::string> env_store;
  for (char** e = ::environ; *e != nullptr; ++e) {
    if (std::string(*e).rfind("DQMA_FAULT=", 0) != 0) {
      env_store.emplace_back(*e);
    }
  }
  if (!fault.empty()) {
    env_store.push_back("DQMA_FAULT=" + fault);
  }
  std::vector<char*> envp;
  envp.reserve(env_store.size() + 1);
  for (std::string& e : env_store) {
    envp.push_back(e.data());
  }
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    // Only async-signal-safe work between fork and exec: the parent holds
    // kernel-pool threads, so any allocation here could deadlock.
    ::execve(argv[0], argv.data(), envp.data());
    ::_exit(127);
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (WIFEXITED(status)) {
    return WEXITSTATUS(status);
  }
  return -WTERMSIG(status);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  fs::remove_all(dir);
  return dir;
}

Coordinator::Options worker_options(const std::string& dir,
                                    const std::string& worker,
                                    int timeout_ms = 60000) {
  Coordinator::Options options;
  options.dir = dir;
  options.worker = worker;
  options.base_seed = 0;
  options.smoke = true;
  options.lease_timeout_ms = timeout_ms;
  return options;
}

std::string key_hex(std::uint64_t key) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[key & 0xFu];
    key >>= 4;
  }
  return out;
}

/// Back-dates a worker's heartbeat (its checkpoint log mtime) so liveness
/// classification sees it as long dead.
void age_heartbeat(const std::string& dir, const std::string& worker) {
  fs::last_write_time(dir + "/workers/" + worker + ".jsonl",
                      fs::file_time_type::clock::now() -
                          std::chrono::minutes(10));
}

TEST(CoordinatorProtocolTest, LeaseLifecycleAcrossWorkers) {
  const std::string dir = fresh_dir("coord_lifecycle");
  Coordinator a(worker_options(dir, "a"));
  Coordinator b(worker_options(dir, "b"));

  a.begin_pass();
  b.begin_pass();
  EXPECT_EQ(a.acquire(42), Claim::kAcquired);
  EXPECT_EQ(a.acquire(42), Claim::kAcquired);  // re-acquire is idempotent
  EXPECT_EQ(b.acquire(42), Claim::kBusy);      // live lease holder
  EXPECT_FALSE(b.pass_converged());

  a.complete(42);
  // Done by a live but unfinalized SMALLER id: b must keep waiting (the
  // ordered-trust rule), a's own view stays converged.
  b.begin_pass();
  EXPECT_EQ(b.acquire(42), Claim::kDone);
  EXPECT_FALSE(b.pass_converged());
  a.begin_pass();
  EXPECT_EQ(a.acquire(42), Claim::kAcquired);  // done by me: recommittable
  EXPECT_TRUE(a.pass_converged());

  a.finalize();
  b.begin_pass();
  EXPECT_EQ(b.acquire(42), Claim::kDone);  // done by a finalized worker
  EXPECT_TRUE(b.pass_converged());
}

TEST(CoordinatorProtocolTest, TrustsLiveLargerIdsSoSmallestConverges) {
  const std::string dir = fresh_dir("coord_trust");
  Coordinator a(worker_options(dir, "a"));
  Coordinator b(worker_options(dir, "b"));

  b.begin_pass();
  EXPECT_EQ(b.acquire(7), Claim::kAcquired);
  b.complete(7);

  // a trusts the live larger id b: resolved, so a can finalize first even
  // though b has not — the asymmetry that breaks the mutual wait.
  a.begin_pass();
  EXPECT_EQ(a.acquire(7), Claim::kDone);
  EXPECT_TRUE(a.pass_converged());
}

TEST(CoordinatorProtocolTest, TornLeaseFileIsReclaimed) {
  const std::string dir = fresh_dir("coord_torn");
  Coordinator a(worker_options(dir, "a"));
  {
    std::ofstream torn(dir + "/leases/" + key_hex(99) + ".json",
                       std::ios::binary);
    torn << "{\"key\":99,\"wor";  // crash mid-write
  }
  a.begin_pass();
  EXPECT_EQ(a.acquire(99), Claim::kAcquired);
  EXPECT_EQ(a.stats().reclaims, 1);
}

TEST(CoordinatorProtocolTest, StaleWorkerIsEvictedAndFenced) {
  const std::string dir = fresh_dir("coord_stale");
  Coordinator a(worker_options(dir, "a"));
  Coordinator b(worker_options(dir, "b"));

  EXPECT_EQ(a.acquire(5), Claim::kAcquired);
  a.complete(5);
  EXPECT_EQ(a.acquire(6), Claim::kAcquired);  // still leased at "death"
  a.stop_heartbeat();
  age_heartbeat(dir, "a");

  // b reclaims both the done marker and the lease of the dead worker.
  b.begin_pass();
  EXPECT_EQ(b.acquire(5), Claim::kAcquired);
  EXPECT_EQ(b.acquire(6), Claim::kAcquired);
  EXPECT_EQ(b.stats().reclaims, 2);
  EXPECT_EQ(b.stats().evictions, 1);  // one tombstone, not one per marker
  EXPECT_TRUE(fs::exists(dir + "/workers/a.evicted"));

  // The zombie is fenced: every protocol step throws, and the worker id
  // cannot rejoin.
  EXPECT_THROW(a.complete(6), WorkerEvicted);
  EXPECT_THROW(a.acquire(7), WorkerEvicted);
  EXPECT_THROW(a.finalize(), WorkerEvicted);
  EXPECT_THROW(Coordinator c(worker_options(dir, "a")),
               std::invalid_argument);
}

TEST(CoordinatorProtocolTest, FinalizedMarkersSurviveStaleness) {
  const std::string dir = fresh_dir("coord_final");
  {
    Coordinator a(worker_options(dir, "a"));
    EXPECT_EQ(a.acquire(11), Claim::kAcquired);
    a.complete(11);
    a.finalize();
  }
  age_heartbeat(dir, "a");
  Coordinator b(worker_options(dir, "b"));
  b.begin_pass();
  EXPECT_EQ(b.acquire(11), Claim::kDone);  // permanent: never reclaimed
  EXPECT_EQ(b.stats().reclaims, 0);
  EXPECT_TRUE(b.pass_converged());
}

TEST(CoordinatorProtocolTest, BackoffIsDeterministicPerWorkerAndBounded) {
  const std::string dir = fresh_dir("coord_backoff");
  std::vector<long long> first;
  {
    Coordinator a(worker_options(dir, "a", 60000));
    for (int round = 0; round < 8; ++round) {
      const auto delay = a.backoff_delay(round);
      EXPECT_GE(delay.count(), 12);
      EXPECT_LE(delay.count(), 5000);  // capped despite the 60 s timeout
      first.push_back(delay.count());
    }
  }
  Coordinator again(worker_options(dir, "a", 60000));
  for (int round = 0; round < 8; ++round) {
    EXPECT_EQ(again.backoff_delay(round).count(), first[static_cast<std::size_t>(round)])
        << "round " << round;
  }
}

TEST(CoordinatorCliTest, RejectsConflictingAndIncompleteFlags) {
  const std::string dir = fresh_dir("coord_flags");
  EXPECT_EQ(run_cli({"--coordinate", dir}), 2);  // no --json
  EXPECT_EQ(run_cli({"--coordinate", dir, "--json", "-"}), 2);
  EXPECT_EQ(run_cli({"--coordinate", dir, "--json", temp_path("x.json"),
                     "--shard", "0/2"}),
            2);
  EXPECT_EQ(run_cli({"--coordinate", dir, "--json", temp_path("x.json"),
                     "--resume", temp_path("x.jsonl")}),
            2);
  EXPECT_EQ(run_cli({"--worker", "w0", "--json", temp_path("x.json")}), 2);
  EXPECT_EQ(run_cli({"--coordinate", dir, "--json", temp_path("x.json"),
                     "--lease-timeout", "0"}),
            2);
  EXPECT_EQ(run_cli({"--coordinate", dir, "--json", temp_path("x.json"),
                     "--worker", "a/b"}),
            2);
}

TEST(CoordinatorEndToEndTest, SequentialWorkersMergeByteIdentical) {
  const std::string mono = temp_path("coord_seq_mono.json");
  ASSERT_EQ(run_cli({"--smoke", "--json", mono}), 0);

  const std::string dir = fresh_dir("coord_seq");
  const std::string w0 = temp_path("coord_seq_w0.json");
  const std::string w1 = temp_path("coord_seq_w1.json");
  ASSERT_EQ(run_cli({"--smoke", "--coordinate", dir, "--worker", "w0",
                     "--json", w0}),
            0);
  // The late worker finds everything finalized, records nothing, and its
  // (empty) document still merges cleanly.
  ASSERT_EQ(run_cli({"--smoke", "--coordinate", dir, "--worker", "w1",
                     "--json", w1}),
            0);
  EXPECT_TRUE(fs::exists(dir + "/workers/w0.final"));
  EXPECT_TRUE(fs::exists(dir + "/workers/w1.final"));

  const std::string merged = temp_path("coord_seq_merged.json");
  ASSERT_EQ(run_cli({"--merge", w0, w1, "--json", merged}), 0);
  EXPECT_EQ(read_file(merged), read_file(mono));

  // A worker's partial document is not comparable before merging.
  EXPECT_EQ(run_cli({"--merge", merged, "--compare", w0}), 1);
}

TEST(CoordinatorEndToEndTest, ThreeConcurrentWorkersMergeByteIdentical) {
  const std::string mono = temp_path("coord_con_mono.json");
  ASSERT_EQ(run_cli({"--smoke", "--json", mono}), 0);

  const std::string dir = fresh_dir("coord_con");
  std::vector<pid_t> pids;
  std::vector<std::string> docs;
  for (const char* w : {"wa", "wb", "wc"}) {
    docs.push_back(temp_path(std::string("coord_con_") + w + ".json"));
    pids.push_back(spawn_worker({"--smoke", "--coordinate", dir, "--worker",
                                 w, "--lease-timeout", "10000", "--json",
                                 docs.back()}));
  }
  for (const pid_t pid : pids) {
    EXPECT_EQ(wait_exit(pid), 0);
  }

  const std::string merged = temp_path("coord_con_merged.json");
  ASSERT_EQ(run_cli({"--merge", docs[0], docs[1], docs[2], "--json",
                     merged}),
            0);
  EXPECT_EQ(read_file(merged), read_file(mono));
}

TEST(CoordinatorEndToEndTest, CrashedWorkerIsRecoveredByteIdentically) {
  const std::string mono = temp_path("coord_crash_mono.json");
  ASSERT_EQ(run_cli({"--smoke", "--json", mono}), 0);

  const std::string dir = fresh_dir("coord_crash");
  const std::string crash_doc = temp_path("coord_crash_w.json");
  const std::string rescue_doc = temp_path("coord_crash_r.json");

  // The crash worker dies at its 6th lease-protocol step (exit 137, a real
  // process kill), leaving committed units, a held lease, and a stale
  // heartbeat behind.
  const pid_t crash = spawn_worker(
      {"--smoke", "--coordinate", dir, "--worker", "a-crash",
       "--lease-timeout", "1500", "--json", crash_doc},
      "lease:crash_after:6");
  EXPECT_EQ(wait_exit(crash), 137);
  EXPECT_FALSE(fs::exists(crash_doc));
  EXPECT_FALSE(fs::exists(dir + "/workers/a-crash.final"));

  // The rescue worker id sorts AFTER the crashed one, so it cannot
  // converge while the crash worker's commits are unfinalized: it waits
  // out the lease timeout, evicts, reclaims, and recomputes.
  const pid_t rescue = spawn_worker({"--smoke", "--coordinate", dir,
                                     "--worker", "z-rescue",
                                     "--lease-timeout", "1500", "--json",
                                     rescue_doc});
  EXPECT_EQ(wait_exit(rescue), 0);
  EXPECT_TRUE(fs::exists(dir + "/workers/a-crash.evicted"));

  const std::string merged = temp_path("coord_crash_merged.json");
  ASSERT_EQ(run_cli({"--merge", rescue_doc, "--json", merged}), 0);
  EXPECT_EQ(read_file(merged), read_file(mono));
}

TEST(CoordinatorEndToEndTest, DoubleCrashWithTornMarkerStillRecovers) {
  const std::string mono = temp_path("coord_dbl_mono.json");
  ASSERT_EQ(run_cli({"--smoke", "--json", mono}), 0);

  const std::string dir = fresh_dir("coord_dbl");
  const pid_t crash1 = spawn_worker(
      {"--smoke", "--coordinate", dir, "--worker", "a-crash1",
       "--lease-timeout", "1500", "--json", temp_path("coord_dbl_1.json")},
      "lease:crash_after:4");
  EXPECT_EQ(wait_exit(crash1), 137);

  // The second casualty dies mid-write, leaving a TORN marker file.
  const pid_t crash2 = spawn_worker(
      {"--smoke", "--coordinate", dir, "--worker", "b-crash2",
       "--lease-timeout", "1500", "--json", temp_path("coord_dbl_2.json")},
      "lease:torn_write");
  EXPECT_EQ(wait_exit(crash2), 137);

  const std::string rescue_doc = temp_path("coord_dbl_r.json");
  const pid_t rescue = spawn_worker({"--smoke", "--coordinate", dir,
                                     "--worker", "z-rescue",
                                     "--lease-timeout", "1500", "--json",
                                     rescue_doc});
  EXPECT_EQ(wait_exit(rescue), 0);

  const std::string merged = temp_path("coord_dbl_merged.json");
  ASSERT_EQ(run_cli({"--merge", rescue_doc, "--json", merged}), 0);
  EXPECT_EQ(read_file(merged), read_file(mono));
}

TEST(CoordinatorEndToEndTest, RestartedWorkerResumesFromItsOwnLog) {
  const std::string mono = temp_path("coord_resume_mono.json");
  ASSERT_EQ(run_cli({"--smoke", "--json", mono}), 0);

  const std::string dir = fresh_dir("coord_resume");
  const std::string doc = temp_path("coord_resume_w.json");
  const pid_t crash = spawn_worker({"--smoke", "--coordinate", dir,
                                    "--worker", "w0", "--json", doc},
                                   "lease:crash_after:10");
  EXPECT_EQ(wait_exit(crash), 137);
  const auto log_size = fs::file_size(dir + "/workers/w0.jsonl");
  EXPECT_GT(log_size, 0u);

  // Same id, not yet evicted: the restart replays its own checkpoint log
  // (committed units come back as cache hits, not recomputations).
  ASSERT_EQ(run_cli({"--smoke", "--coordinate", dir, "--worker", "w0",
                     "--json", doc}),
            0);
  const std::string merged = temp_path("coord_resume_merged.json");
  ASSERT_EQ(run_cli({"--merge", doc, "--json", merged}), 0);
  EXPECT_EQ(read_file(merged), read_file(mono));
}

}  // namespace

/// --worker-main <cli args...>: run this binary as a dqma_bench worker
/// over the fake registry (the subprocess side of spawn_worker).
int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--worker-main") {
    register_fake_experiments();
    std::vector<const char*> args{"dqma_bench"};
    for (int i = 2; i < argc; ++i) {
      args.push_back(argv[i]);
    }
    return dqma::sweep::cli_main(static_cast<int>(args.size()), args.data());
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

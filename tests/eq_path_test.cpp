// Tests for the EQ path protocol (Algorithms 3/4), its ablations, and the
// exact worst-case engine. Together these validate the paper's Theorem 19
// pipeline on paths: perfect completeness, soundness 1/3 at k = Theta(r^2)
// repetitions, and the necessity of the symmetrization step.
#include <gtest/gtest.h>

#include <cmath>

#include "dqma/attacks.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/exact_runner.hpp"
#include "dqma/runner.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::CVec;
using dqma::protocol::all_target_attack;
using dqma::protocol::EqPathMode;
using dqma::protocol::EqPathProtocol;
using dqma::protocol::ExactEqPathAnalyzer;
using dqma::protocol::geodesic_states;
using dqma::protocol::PathProof;
using dqma::protocol::rotation_attack;
using dqma::protocol::step_attack;
using dqma::test::chain_swap_overlap_accept;
using dqma::test::random_unequal_pair;
using dqma::util::Bitstring;
using dqma::util::Rng;

TEST(GeodesicTest, EndpointsAndMonotonicity) {
  Rng rng(1);
  const CVec a = dqma::quantum::haar_state(8, rng);
  const CVec b = dqma::quantum::haar_state(8, rng);
  const auto states = geodesic_states(a, b, 5);
  ASSERT_EQ(states.size(), 5u);
  // Overlap with a decreases along the path; overlap with b increases.
  double prev_a = 1.0;
  double prev_b = 0.0;
  for (const auto& s : states) {
    const double oa = std::abs(a.dot(s));
    const double ob = std::abs(b.dot(s));
    EXPECT_LE(oa, prev_a + 1e-9);
    EXPECT_GE(ob, prev_b - 1e-9);
    prev_a = oa;
    prev_b = ob;
    EXPECT_NORMALIZED(s);
  }
}

TEST(GeodesicTest, AdjacentOverlapsAreUniform) {
  Rng rng(2);
  const CVec a = dqma::quantum::haar_state(6, rng);
  const CVec b = dqma::quantum::haar_state(6, rng);
  const auto states = geodesic_states(a, b, 7);
  // Consecutive geodesic points have equal overlap cos(theta/8).
  double first = std::abs(states[0].dot(states[1]));
  for (std::size_t j = 2; j < states.size(); ++j) {
    EXPECT_NEAR(std::abs(states[j - 1].dot(states[j])), first, 1e-9);
  }
}

class EqPathCompletenessTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EqPathCompletenessTest, PerfectCompleteness) {
  const auto [n, r, reps] = GetParam();
  Rng rng(3);
  const EqPathProtocol protocol(n, r, 0.3, reps);
  const Bitstring x = Bitstring::random(n, rng);
  EXPECT_NEAR(protocol.completeness(x), 1.0, 1e-9)
      << "n=" << n << " r=" << r << " reps=" << reps;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EqPathCompletenessTest,
    ::testing::Combine(::testing::Values(8, 24, 64),
                       ::testing::Values(1, 2, 4, 9),
                       ::testing::Values(1, 5)));

TEST(EqPathTest, HonestProofOnUnequalInputsIsCaughtByFinalTest) {
  Rng rng(4);
  const int n = 24;
  const EqPathProtocol protocol(n, 4, 0.3, 1);
  const auto [x, y] = random_unequal_pair(n, rng);
  // All SWAP tests accept (identical registers); only v_r's POVM rejects.
  const double accept =
      protocol.accept_probability(x, y, protocol.honest_proof(x));
  const double delta = protocol.scheme().delta();
  EXPECT_LE(accept, delta * delta + 1e-9);
}

TEST(EqPathTest, PaperRepetitionsReachSoundnessOneThird) {
  Rng rng(5);
  const int n = 16;
  for (int r : {2, 3, 5, 8}) {
    const EqPathProtocol protocol(n, r, 0.3, EqPathProtocol::paper_reps(r));
    const auto [x, y] = random_unequal_pair(n, rng);
    EXPECT_LE(protocol.best_attack_accept(x, y), 1.0 / 3.0) << "r=" << r;
  }
}

TEST(EqPathTest, SingleRepetitionIsNotSoundForLongPaths) {
  // The rotation attack survives one repetition with probability
  // 1 - O(1/r): this is why Theta(r^2) parallel repetitions are needed.
  Rng rng(6);
  const int n = 16;
  const EqPathProtocol protocol(n, 10, 0.3, 1);
  const auto [x, y] = random_unequal_pair(n, rng);
  EXPECT_GE(protocol.best_attack_accept(x, y), 0.7);
}

TEST(EqPathTest, RotationAttackBeatsStepAttack) {
  Rng rng(7);
  const int n = 16;
  const EqPathProtocol protocol(n, 8, 0.3, 1);
  const auto [x, y] = random_unequal_pair(n, rng);
  const CVec hx = protocol.scheme().state(x);
  const CVec hy = protocol.scheme().state(y);
  const double rot = protocol.single_rep_accept(x, y, rotation_attack(hx, hy, 7));
  for (int cut = 0; cut <= 7; ++cut) {
    EXPECT_GE(rot + 1e-9,
              protocol.single_rep_accept(x, y, step_attack(hx, hy, 7, cut)));
  }
}

TEST(EqPathTest, AttackAcceptanceDecaysWithRepetitions) {
  Rng rng(8);
  const int n = 16;
  const auto [x, y] = random_unequal_pair(n, rng);
  double prev = 1.0;
  for (int reps : {1, 10, 50}) {
    const EqPathProtocol protocol(n, 4, 0.3, reps);
    const double acc = protocol.best_attack_accept(x, y);
    EXPECT_LE(acc, prev + 1e-12);
    prev = acc;
  }
}

TEST(EqPathTest, SoundnessErrorMatchesLemma17Shape) {
  // Single-repetition rejection probability of the best attack is at least
  // 4/(81 r^2) (Lemma 17 + Lemma 11 give acceptance <= 1 - 4/81r^2).
  Rng rng(9);
  const int n = 16;
  for (int r : {2, 4, 8}) {
    const EqPathProtocol protocol(n, r, 0.3, 1);
    const auto [x, y] = random_unequal_pair(n, rng);
    const double accept = protocol.best_attack_accept(x, y);
    EXPECT_LE(accept, 1.0 - 4.0 / (81.0 * r * r) + 1e-9) << "r=" << r;
  }
}

TEST(EqPathAblationTest, NoSymmetrizationIsCompletelyBroken) {
  // Without the symmetrization step a product proof achieves acceptance 1
  // on a no instance: kept registers mimic the forward chain while the
  // forwarded registers deliver |h_y| to the endpoint.
  Rng rng(10);
  const int n = 16;
  const int r = 5;
  const EqPathProtocol protocol(n, r, 0.3, 7, EqPathMode::kNoSymmetrization);
  const auto [x, y] = random_unequal_pair(n, rng);
  const CVec hx = protocol.scheme().state(x);
  const CVec hy = protocol.scheme().state(y);
  PathProof cheat;
  for (int j = 0; j < r - 1; ++j) {
    cheat.reg0.push_back(hx);                       // kept: matches the chain
    cheat.reg1.push_back(j + 1 < r - 1 ? hx : hy);  // forwarded: flip at end
  }
  const double accept = protocol.accept_probability(
      x, y, dqma::protocol::replicate(cheat, 7));
  EXPECT_NEAR(accept, 1.0, 1e-9);
}

TEST(EqPathAblationTest, SymmetrizationDefeatsTheChainCheat) {
  // The same cheat against the real protocol is caught with constant
  // probability per repetition.
  Rng rng(11);
  const int n = 16;
  const int r = 5;
  const EqPathProtocol protocol(n, r, 0.3, 1);
  const auto [x, y] = random_unequal_pair(n, rng);
  const CVec hx = protocol.scheme().state(x);
  const CVec hy = protocol.scheme().state(y);
  PathProof cheat;
  for (int j = 0; j < r - 1; ++j) {
    cheat.reg0.push_back(hx);
    cheat.reg1.push_back(j + 1 < r - 1 ? hx : hy);
  }
  EXPECT_LE(protocol.single_rep_accept(x, y, cheat), 0.95);
}

TEST(EqPathAblationTest, FgnpForwardingHasPerfectCompleteness) {
  Rng rng(12);
  const EqPathProtocol protocol(16, 5, 0.3, 3, EqPathMode::kFgnpForwarding);
  const Bitstring x = Bitstring::random(16, rng);
  EXPECT_NEAR(protocol.completeness(x), 1.0, 1e-9);
}

TEST(EqPathAblationTest, SymmetrizedBeatsFgnpPerRepetition) {
  // Per repetition, the symmetrized protocol catches the rotation attack
  // with higher probability than the FGNP forwarding protocol (whose tests
  // only occur on favorable coin patterns).
  Rng rng(13);
  const int n = 16;
  const int r = 6;
  const EqPathProtocol ours(n, r, 0.3, 1, EqPathMode::kSymmetrized);
  const EqPathProtocol fgnp(n, r, 0.3, 1, EqPathMode::kFgnpForwarding);
  const auto [x, y] = random_unequal_pair(n, rng);
  const CVec hx = ours.scheme().state(x);
  const CVec hy = ours.scheme().state(y);
  const auto attack = rotation_attack(hx, hy, r - 1);
  EXPECT_LE(ours.single_rep_accept(x, y, attack),
            fgnp.single_rep_accept(x, y, attack) + 1e-9);
}

TEST(EqPathCostTest, CostsMatchFormulas) {
  const EqPathProtocol protocol(64, 6, 0.3, 10);
  const auto c = protocol.costs();
  const long long q = protocol.scheme().qubits();
  EXPECT_EQ(c.local_proof_qubits, 2 * 10 * q);
  EXPECT_EQ(c.total_proof_qubits, 2 * 10 * q * 5);
  EXPECT_EQ(c.local_message_qubits, 10 * q);
  EXPECT_EQ(c.total_message_qubits, 10 * q * 6);
}

TEST(EqPathCostTest, LocalProofGrowsAsRSquaredLogN) {
  // With the paper's repetition count, local proof size is O(r^2 log n):
  // doubling r roughly quadruples it at fixed n.
  const int n = 64;
  const EqPathProtocol p4(n, 4, 0.3, EqPathProtocol::paper_reps(4));
  const EqPathProtocol p8(n, 8, 0.3, EqPathProtocol::paper_reps(8));
  const double ratio = static_cast<double>(p8.costs().local_proof_qubits) /
                       static_cast<double>(p4.costs().local_proof_qubits);
  EXPECT_NEAR(ratio, 4.0, 0.3);
}

// --- exact engine -----------------------------------------------------------

TEST(ExactEqPathTest, ChainDpMatchesExactEngineOnProducts) {
  // Cross-validation of the two independent implementations: the closed-
  // form coin DP and the explicit acceptance operator agree on random
  // product proofs.
  Rng rng(14);
  const int r = 3;
  // Tiny fingerprint scheme so states have dimension 4.
  const dqma::fingerprint::FingerprintScheme scheme(6, 4, 0.9, 21);
  Bitstring x = Bitstring::random(6, rng);
  Bitstring y = Bitstring::random(6, rng);
  const CVec hx = scheme.state(x);
  const CVec hy = scheme.state(y);
  const ExactEqPathAnalyzer exact(hx, hy, r);

  // Build the same protocol objects by hand: the DP needs a protocol whose
  // scheme produces hx, hy, so evaluate chain_accept directly instead.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<CVec> regs;
    PathProof proof;
    for (int j = 0; j < r - 1; ++j) {
      const CVec a = dqma::quantum::haar_state(4, rng);
      const CVec b = dqma::quantum::haar_state(4, rng);
      proof.reg0.push_back(a);
      proof.reg1.push_back(b);
      regs.push_back(a);
      regs.push_back(b);
    }
    const double dp = chain_swap_overlap_accept(hx, hy, proof);
    EXPECT_NEAR(dp, exact.product_accept(regs), 1e-9) << "trial " << trial;
  }
}

TEST(ExactEqPathTest, WorstCaseDominatesAllProductAttacks) {
  Rng rng(15);
  CVec a = CVec::basis(2, 0);
  CVec b(2);
  // <a|b> = 0.2 mimics a delta = 0.2 fingerprint pair.
  b[0] = dqma::linalg::Complex{0.2, 0.0};
  b[1] = dqma::linalg::Complex{std::sqrt(1.0 - 0.04), 0.0};
  for (int r : {2, 3, 4}) {
    const ExactEqPathAnalyzer exact(a, b, r);
    const double worst = exact.worst_case_accept();
    const double product = exact.best_product_accept(rng, 6, 40);
    EXPECT_LE(product, worst + 1e-7) << "r=" << r;
    EXPECT_LT(worst, 1.0 - 1e-4) << "r=" << r;  // soundness error < 1
    // Rotation attack is a product strategy: dominated by both.
    const auto rot = rotation_attack(a, b, r - 1);
    std::vector<CVec> regs;
    for (int j = 0; j < r - 1; ++j) {
      regs.push_back(rot.reg0[static_cast<std::size_t>(j)]);
      regs.push_back(rot.reg1[static_cast<std::size_t>(j)]);
    }
    EXPECT_LE(exact.product_accept(regs), product + 1e-6);
  }
}

TEST(ExactEqPathTest, WorstCaseRespectsLemma17Bound) {
  // The paper's soundness analysis: acceptance <= 1 - 4/(81 r^2) for any
  // proof, including entangled ones.
  CVec a = CVec::basis(2, 0);
  CVec b = CVec::basis(2, 1);  // orthogonal endpoints (delta = 0)
  for (int r : {2, 3, 4}) {
    const ExactEqPathAnalyzer exact(a, b, r);
    EXPECT_LE(exact.worst_case_accept(), 1.0 - 4.0 / (81.0 * r * r) + 1e-9);
  }
}

TEST(ExactEqPathTest, EntangledAdvantageIsBounded) {
  // Entangled proofs may beat product proofs, but not by much on these
  // instances; record the gap to catch regressions in either engine.
  Rng rng(16);
  CVec a = CVec::basis(2, 0);
  CVec b = CVec::basis(2, 1);
  const ExactEqPathAnalyzer exact(a, b, 3);
  const double worst = exact.worst_case_accept();
  const double product = exact.best_product_accept(rng, 8, 60);
  EXPECT_GE(worst, product - 1e-9);
  EXPECT_LE(worst - product, 0.2);
}

TEST(ExactEqPathTest, EqualEndpointsAcceptCompletely) {
  Rng rng(17);
  const CVec a = dqma::quantum::haar_state(3, rng);
  const ExactEqPathAnalyzer exact(a, a, 3);
  // The honest product proof (all registers = a) accepts with certainty.
  std::vector<CVec> regs(4, a);
  EXPECT_NEAR(exact.product_accept(regs), 1.0, 1e-9);
  EXPECT_NEAR(exact.worst_case_accept(), 1.0, 1e-7);
}

}  // namespace

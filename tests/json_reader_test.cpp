// The dependency-free JSON reader (util/json_reader.hpp): value fidelity
// (the exact numeric round trips the byte-identical merge gate relies on),
// full-document parsing, and strict rejection of malformed input — a
// corrupt shard artifact or checkpoint line must fail loudly, never load
// as garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "sweep/json.hpp"
#include "sweep/sweep.hpp"
#include "util/json_reader.hpp"

namespace {

using dqma::sweep::Json;
using dqma::sweep::Value;
using dqma::sweep::value_to_string;
using dqma::util::json::Node;
using dqma::util::json::parse;
using dqma::util::json::parse_value;

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_EQ(parse("0").as_int(), 0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(parse("0.5").as_double(), 0.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.25E-2").as_double(), -0.0225);
}

TEST(JsonReaderTest, IntegerKindsAndRanges) {
  // Integral literals stay integers (no fraction/exponent in the source);
  // values above INT64_MAX land in the uint64 kind (seeds, job keys).
  EXPECT_TRUE(parse("7").is_integer());
  EXPECT_FALSE(parse("7.0").is_integer());
  EXPECT_FALSE(parse("7e0").is_integer());

  const auto max_int64 = std::numeric_limits<long long>::max();
  EXPECT_EQ(parse(std::to_string(max_int64)).as_int(), max_int64);

  const std::uint64_t big = 0xF1E2D3C4B5A69788ULL;
  const Node node = parse(std::to_string(big));
  EXPECT_EQ(node.kind(), Node::Kind::kUint);
  EXPECT_EQ(node.as_uint(), big);
  // Too large even for uint64.
  EXPECT_THROW(parse("99999999999999999999999"), std::invalid_argument);
}

TEST(JsonReaderTest, DoublesRoundTripExactly) {
  // The writer emits shortest round-trip forms; parsing one back must
  // reproduce the identical bits — the heart of the byte-stable merge.
  for (const double value :
       {0.1, 1.0 / 3.0, 1e-9, 6.02214076e23, 4.9406564584124654e-324,
        -0.0001257318282375692, 0.4294145107269268}) {
    const std::string text = value_to_string(Value(value));
    const Node node = parse(text);
    EXPECT_EQ(node.as_double(), value) << text;
    EXPECT_EQ(value_to_string(Value(node.as_double())), text);
  }
}

TEST(JsonReaderTest, ParsesNestedDocumentPreservingOrder) {
  const Node doc = parse(R"({
    "config": {"smoke": true, "base_seed": 0},
    "experiments": [
      {"name": "a", "points": [{"params": {"n": 4}, "metrics": {"v": 0.5}}]},
      {"name": "b", "points": []}
    ]
  })");
  EXPECT_TRUE(doc.at("config").at("smoke").as_bool());
  const auto& experiments = doc.at("experiments").items();
  ASSERT_EQ(experiments.size(), 2u);
  EXPECT_EQ(experiments[0].at("name").as_string(), "a");
  EXPECT_EQ(experiments[1].at("points").items().size(), 0u);
  const Node& point = experiments[0].at("points").items()[0];
  EXPECT_EQ(point.at("params").at("n").as_int(), 4);
  // Member order is document order.
  EXPECT_EQ(doc.members()[0].first, "config");
  EXPECT_EQ(doc.members()[1].first, "experiments");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::invalid_argument);
}

TEST(JsonReaderTest, RoundTripsThroughTheWriter) {
  // writer -> reader -> (typed values) for everything the trajectory
  // schema contains, including escaped strings and a control character.
  Json object = Json::object();
  object.add("text", Json(std::string("line\n\ttab \"quoted\" \\ \x07")));
  object.add("seed", Json(std::uint64_t{0xDEADBEEFDEADBEEFULL}));
  object.add("count", Json(-12));
  object.add("ratio", Json(0.30000000000000004));
  Json array = Json::array();
  array.push_back(Json(true));
  array.push_back(Json());
  object.add("list", std::move(array));

  for (const std::string& text :
       {object.dump(), object.dump_compact()}) {
    const Node node = parse(text);
    EXPECT_EQ(node.at("text").as_string(), "line\n\ttab \"quoted\" \\ \x07");
    EXPECT_EQ(node.at("seed").as_uint(), 0xDEADBEEFDEADBEEFULL);
    EXPECT_EQ(node.at("count").as_int(), -12);
    EXPECT_EQ(node.at("ratio").as_double(), 0.30000000000000004);
    EXPECT_TRUE(node.at("list").items()[0].as_bool());
    EXPECT_TRUE(node.at("list").items()[1].is_null());
  }
}

TEST(JsonReaderTest, DecodesUnicodeEscapes) {
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("\u00e9")").as_string(), "\xC3\xA9");      // e-acute
  EXPECT_EQ(parse(R"("\u20ac")").as_string(), "\xE2\x82\xAC");  // euro sign
  EXPECT_EQ(parse(R"("\ud83d\ude00")").as_string(),
            "\xF0\x9F\x98\x80");  // surrogate pair (emoji)
  // Raw UTF-8 bytes pass through untouched.
  EXPECT_EQ(parse("\"\xC3\xA9\"").as_string(), "\xC3\xA9");
  EXPECT_THROW(parse(R"("\ud83d")"), std::invalid_argument);   // lone lead
  EXPECT_THROW(parse(R"("\ude00")"), std::invalid_argument);   // lone trail
  EXPECT_THROW(parse(R"("\ud83dx")"), std::invalid_argument);
  EXPECT_THROW(parse(R"("\u00zz")"), std::invalid_argument);
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  for (const char* bad : {
           "",                      // empty
           "{",                     // truncated object
           "[1, 2",                 // truncated array
           "\"unterminated",        // truncated string
           "{\"a\": }",             // missing value
           "{\"a\" 1}",             // missing colon
           "{a: 1}",                // unquoted key
           "[1,]",                  // trailing comma
           "{} {}",                 // trailing garbage
           "tru",                   // bad literal
           "nul",                   // bad literal
           "NaN",                   // no bare NaN (the writer emits null)
           "Infinity",              //
           "01",                    // leading zero
           "1.",                    // digit required after '.'
           ".5",                    // digit required before '.'
           "+1",                    // no leading plus
           "1e",                    // empty exponent
           "--1",                   //
           "\"bad \x01 control\"",  // unescaped control character
           "\"bad \\x escape\"",    // unknown escape
           "1e999",                 // double overflow
       }) {
    EXPECT_THROW(parse(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonReaderTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW(parse(deep + std::string(100, ']')), std::invalid_argument);
  // 32 levels is comfortably within the cap.
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(parse(ok).is_array());
}

TEST(JsonReaderTest, ParseValueStreamsJsonl) {
  const std::string lines = "{\"a\": 1}\n{\"b\": 2}\n[3]\n";
  std::size_t offset = 0;
  const Node first = parse_value(lines, offset);
  EXPECT_EQ(first.at("a").as_int(), 1);
  const Node second = parse_value(lines, offset);
  EXPECT_EQ(second.at("b").as_int(), 2);
  const Node third = parse_value(lines, offset);
  EXPECT_EQ(third.items()[0].as_int(), 3);
  EXPECT_EQ(offset, lines.size());
}

TEST(JsonReaderTest, FirstDuplicateKeyWins) {
  // The writer never emits duplicates; the reader keeps both members and
  // find() returns the first, matching RFC 8259's laissez-faire stance.
  const Node node = parse(R"({"k": 1, "k": 2})");
  EXPECT_EQ(node.at("k").as_int(), 1);
  EXPECT_EQ(node.members().size(), 2u);
}

}  // namespace

// Tests for the scenario engine (ROADMAP item 3): seeded topology
// generation, scenario sampling, the adversary registry, the outcome
// taxonomy, and the depolarized local tests backing the noisy protocol
// evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "dqma/eq_graph.hpp"
#include "dqma/noise.hpp"
#include "linalg/vector.hpp"
#include "qtest/permutation_test.hpp"
#include "scenario/adversary.hpp"
#include "scenario/sampler.hpp"
#include "scenario/taxonomy.hpp"
#include "scenario/topology.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::protocol::EqGraphProtocol;
using dqma::protocol::NoiseModel;
using dqma::qtest::depolarized_permutation_test_accept;
using dqma::qtest::permutation_test_accept;
using dqma::scenario::Adversary;
using dqma::scenario::all_families;
using dqma::scenario::ClassifyLimits;
using dqma::scenario::classify;
using dqma::scenario::draw_scenario;
using dqma::scenario::family_from_name;
using dqma::scenario::family_name;
using dqma::scenario::generate_topology;
using dqma::scenario::Outcome;
using dqma::scenario::outcome_name;
using dqma::scenario::ScenarioSample;
using dqma::scenario::ScenarioSpec;
using dqma::scenario::TaxonomyCounts;
using dqma::scenario::Topology;
using dqma::scenario::TopologyFamily;
using dqma::scenario::TopologySpec;
using dqma::util::Bitstring;
using dqma::util::Rng;

// ---------------------------------------------------------------------------
// Topology generation

TEST(TopologyTest, FamilyNamesRoundTrip) {
  EXPECT_EQ(all_families().size(), 5u);
  for (const TopologyFamily family : all_families()) {
    EXPECT_EQ(family_from_name(family_name(family)), family);
  }
  EXPECT_THROW(family_from_name("torus"), std::exception);
}

TEST(TopologyTest, SameSeedReproducesTopologyExactly) {
  for (const TopologyFamily family : all_families()) {
    TopologySpec spec;
    spec.family = family;
    spec.nodes = 11;
    spec.terminals = 4;
    spec.max_degree = 3;
    spec.max_noise = 0.4;
    const Topology a = generate_topology(spec, 0x5eed5eed);
    const Topology b = generate_topology(spec, 0x5eed5eed);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.terminals, b.terminals);
    // Bitwise, not approximate: the sweep gate depends on byte identity.
    ASSERT_EQ(a.link_rates.size(), b.link_rates.size());
    for (std::size_t e = 0; e < a.link_rates.size(); ++e) {
      EXPECT_EQ(a.link_rates[e], b.link_rates[e]);
    }
  }
}

TEST(TopologyTest, DifferentSeedsChangeRandomFamilies) {
  TopologySpec spec;
  spec.family = TopologyFamily::kRandomTree;
  spec.nodes = 12;
  spec.terminals = 3;
  int differing = 0;
  const Topology base = generate_topology(spec, 1);
  for (std::uint64_t seed = 2; seed < 10; ++seed) {
    if (generate_topology(spec, seed).edges != base.edges) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(TopologyTest, InvariantsHoldAcrossManySeeds) {
  // The acceptance bar for the generator: every draw is connected, respects
  // the degree cap (star excepted), lists edges canonically, and covers
  // each edge with an in-range rate. 1000 seeds spread over all families.
  for (const TopologyFamily family : all_families()) {
    TopologySpec spec;
    spec.family = family;
    spec.nodes = 10;
    spec.terminals = 4;
    spec.max_degree = 4;
    spec.max_noise = 0.3;
    for (std::uint64_t seed = 0; seed < 1000; ++seed) {
      const Topology t = generate_topology(spec, seed);
      ASSERT_EQ(t.graph.node_count(), spec.nodes);
      ASSERT_TRUE(t.graph.is_connected());
      if (family != TopologyFamily::kStar) {
        for (int v = 0; v < spec.nodes; ++v) {
          ASSERT_LE(t.graph.degree(v), spec.max_degree);
        }
      }
      // Terminals: distinct, in range.
      const std::set<int> distinct(t.terminals.begin(), t.terminals.end());
      ASSERT_EQ(static_cast<int>(distinct.size()), spec.terminals);
      ASSERT_GE(*distinct.begin(), 0);
      ASSERT_LT(*distinct.rbegin(), spec.nodes);
      // Canonical edge list parallel to the rates.
      ASSERT_EQ(t.link_rates.size(), t.edges.size());
      ASSERT_EQ(static_cast<int>(t.edges.size()), t.graph.edge_count());
      for (std::size_t e = 0; e < t.edges.size(); ++e) {
        ASSERT_LT(t.edges[e].first, t.edges[e].second);
        if (e > 0) {
          ASSERT_LT(t.edges[e - 1], t.edges[e]);
        }
        ASSERT_GE(t.link_rates[e], 0.0);
        ASSERT_LE(t.link_rates[e], spec.max_noise);
        ASSERT_EQ(t.link_rate(t.edges[e].first, t.edges[e].second),
                  t.link_rates[e]);
        ASSERT_EQ(t.link_rate(t.edges[e].second, t.edges[e].first),
                  t.link_rates[e]);
      }
    }
  }
}

TEST(TopologyTest, TreesHaveTreeEdgeCounts) {
  for (const TopologyFamily family :
       {TopologyFamily::kPath, TopologyFamily::kStar,
        TopologyFamily::kCaterpillar, TopologyFamily::kRandomTree}) {
    TopologySpec spec;
    spec.family = family;
    spec.nodes = 9;
    spec.max_degree = 8;  // stars need the slack
    const Topology t = generate_topology(spec, 7);
    EXPECT_EQ(static_cast<int>(t.edges.size()), spec.nodes - 1);
  }
}

TEST(TopologyTest, RejectsBadSpecs) {
  TopologySpec spec;
  spec.nodes = 1;
  EXPECT_THROW(generate_topology(spec, 0), std::exception);
  spec.nodes = 8;
  spec.terminals = 1;
  EXPECT_THROW(generate_topology(spec, 0), std::exception);
  spec.terminals = 9;
  EXPECT_THROW(generate_topology(spec, 0), std::exception);
  spec.terminals = 2;
  spec.max_degree = 1;
  EXPECT_THROW(generate_topology(spec, 0), std::exception);
  spec.max_degree = 4;
  spec.max_noise = 1.5;
  EXPECT_THROW(generate_topology(spec, 0), std::exception);
  spec.max_noise = 0.0;
  EXPECT_NO_THROW(generate_topology(spec, 0));
  EXPECT_THROW(generate_topology(spec, 0).link_rate(0, 99), std::exception);
}

// ---------------------------------------------------------------------------
// Scenario sampling

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.topology.family = TopologyFamily::kRandomTree;
  spec.topology.nodes = 7;
  spec.topology.terminals = 3;
  spec.topology.max_degree = 3;
  spec.topology.max_noise = 0.2;
  spec.n = 6;
  spec.delta = 0.3;
  spec.reps = 1;
  return spec;
}

TEST(SamplerTest, SameSeedReproducesScenarioExactly) {
  const ScenarioSpec spec = small_spec();
  const ScenarioSample a = draw_scenario(spec, 42);
  const ScenarioSample b = draw_scenario(spec, 42);
  EXPECT_EQ(a.topology.edges, b.topology.edges);
  EXPECT_EQ(a.topology.terminals, b.topology.terminals);
  EXPECT_EQ(a.yes_instance, b.yes_instance);
  EXPECT_EQ(a.deviant_terminal, b.deviant_terminal);
  ASSERT_EQ(a.inputs.size(), b.inputs.size());
  for (std::size_t k = 0; k < a.inputs.size(); ++k) {
    EXPECT_EQ(a.inputs[k], b.inputs[k]);
  }
}

TEST(SamplerTest, YesProbabilityPinsInstanceKind) {
  ScenarioSpec spec = small_spec();
  spec.yes_probability = 1.0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const ScenarioSample s = draw_scenario(spec, seed);
    ASSERT_TRUE(s.yes_instance);
    ASSERT_EQ(s.deviant_terminal, -1);
    for (const Bitstring& input : s.inputs) {
      ASSERT_EQ(input, s.inputs[0]);
    }
  }
  spec.yes_probability = 0.0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const ScenarioSample s = draw_scenario(spec, seed);
    ASSERT_FALSE(s.yes_instance);
    ASSERT_GE(s.deviant_terminal, 0);
    ASSERT_LT(s.deviant_terminal,
              static_cast<int>(s.topology.terminals.size()));
    int disagreements = 0;
    for (const Bitstring& input : s.inputs) {
      if (input != s.inputs.front()) {
        ++disagreements;
      }
    }
    // Exactly one terminal deviates (the sampler flips on collision), and
    // deviant_terminal names it — unless terminal 0 is itself the deviant,
    // in which case every other input disagrees with the front.
    const std::size_t deviant =
        static_cast<std::size_t>(s.deviant_terminal);
    if (deviant == 0) {
      ASSERT_EQ(disagreements, static_cast<int>(s.inputs.size()) - 1);
    } else {
      ASSERT_EQ(disagreements, 1);
      ASSERT_NE(s.inputs[deviant], s.inputs[0]);
    }
  }
}

TEST(SamplerTest, TreeLinkNoiseCoversTreeWithZeroRootAndVirtualRates) {
  const ScenarioSpec spec = small_spec();
  const ScenarioSample sample = draw_scenario(spec, 3);
  const EqGraphProtocol protocol = dqma::scenario::build_protocol(sample);
  const auto& tree = protocol.tree();
  const NoiseModel noise =
      dqma::scenario::tree_link_noise(sample.topology, tree);
  ASSERT_EQ(noise.link_count(), tree.size());
  for (int v = 0; v < tree.size(); ++v) {
    const auto& node = tree.node(v);
    if (node.parent < 0) {
      EXPECT_EQ(noise.rate(v), 0.0);  // root: no upstream channel
    } else if (node.original == tree.node(node.parent).original) {
      EXPECT_EQ(noise.rate(v), 0.0);  // virtual leaf: same physical vertex
    } else {
      EXPECT_EQ(noise.rate(v), sample.topology.link_rate(
                                   node.original,
                                   tree.node(node.parent).original));
    }
  }
}

// ---------------------------------------------------------------------------
// Adversary registry

TEST(AdversaryTest, BuiltinsRegisterOnceAndResolveByName) {
  dqma::scenario::register_builtin_adversaries();
  const std::size_t count = dqma::scenario::adversaries().size();
  EXPECT_GE(count, 4u);
  dqma::scenario::register_builtin_adversaries();  // idempotent
  EXPECT_EQ(dqma::scenario::adversaries().size(), count);
  for (const char* name :
       {"geodesic", "step_cut", "all_target", "tag_collision"}) {
    const Adversary* adversary = dqma::scenario::find_adversary(name);
    ASSERT_NE(adversary, nullptr) << name;
    EXPECT_EQ(adversary->name, name);
    EXPECT_TRUE(static_cast<bool>(adversary->completeness));
    EXPECT_TRUE(static_cast<bool>(adversary->attack));
  }
  EXPECT_EQ(dqma::scenario::find_adversary("no_such_strategy"), nullptr);
}

TEST(AdversaryTest, RegistryRejectsBadRegistrations) {
  dqma::scenario::register_builtin_adversaries();
  const auto noop = [](const ScenarioSample&, Rng&) { return 0.0; };
  EXPECT_THROW(dqma::scenario::register_adversary({"", "", noop, noop}),
               std::exception);
  EXPECT_THROW(
      dqma::scenario::register_adversary({"incomplete", "", nullptr, noop}),
      std::exception);
  EXPECT_THROW(
      dqma::scenario::register_adversary({"geodesic", "dup", noop, noop}),
      std::exception);
}

// ---------------------------------------------------------------------------
// Outcome taxonomy

TEST(TaxonomyTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(outcome_name(Outcome::kCompletenessHolds),
               "completeness_holds");
  EXPECT_STREQ(outcome_name(Outcome::kThresholdViolated),
               "threshold_violated");
  EXPECT_STREQ(outcome_name(Outcome::kSoundnessHolds), "soundness_holds");
  EXPECT_STREQ(outcome_name(Outcome::kAttackSucceeds), "attack_succeeds");
  EXPECT_STREQ(outcome_name(Outcome::kResourceBoundExceeded),
               "resource_bound_exceeded");
}

TEST(TaxonomyTest, CountsAccumulatePerOutcome) {
  TaxonomyCounts counts;
  counts.add(Outcome::kCompletenessHolds);
  counts.add(Outcome::kCompletenessHolds);
  counts.add(Outcome::kAttackSucceeds);
  counts.add(Outcome::kResourceBoundExceeded);
  EXPECT_EQ(counts.completeness_holds, 2);
  EXPECT_EQ(counts.threshold_violated, 0);
  EXPECT_EQ(counts.soundness_holds, 0);
  EXPECT_EQ(counts.attack_succeeds, 1);
  EXPECT_EQ(counts.resource_bound_exceeded, 1);
  EXPECT_EQ(counts.total(), 4);
}

/// Adversary stub returning fixed values (classification depends only on
/// the thresholds, not the protocol run).
Adversary stub_adversary(double completeness, double attack) {
  return {"stub", "fixed values",
          [completeness](const ScenarioSample&, Rng&) { return completeness; },
          [attack](const ScenarioSample&, Rng&) { return attack; }};
}

TEST(TaxonomyTest, ClassifiesAgainstThresholds) {
  ScenarioSpec spec = small_spec();
  const ClassifyLimits limits;
  Rng rng(0);

  spec.yes_probability = 1.0;
  const ScenarioSample yes = draw_scenario(spec, 5);
  EXPECT_EQ(classify(yes, stub_adversary(0.9, 0.0), limits, rng),
            Outcome::kCompletenessHolds);
  EXPECT_EQ(classify(yes, stub_adversary(0.5, 0.0), limits, rng),
            Outcome::kThresholdViolated);
  // Threshold is inclusive on the completeness side.
  EXPECT_EQ(classify(yes, stub_adversary(2.0 / 3.0, 0.0), limits, rng),
            Outcome::kCompletenessHolds);

  spec.yes_probability = 0.0;
  const ScenarioSample no = draw_scenario(spec, 5);
  EXPECT_EQ(classify(no, stub_adversary(1.0, 0.2), limits, rng),
            Outcome::kSoundnessHolds);
  EXPECT_EQ(classify(no, stub_adversary(1.0, 0.9), limits, rng),
            Outcome::kAttackSucceeds);
  // Exclusive on the soundness side: exactly 1/3 still holds.
  EXPECT_EQ(classify(no, stub_adversary(1.0, 1.0 / 3.0), limits, rng),
            Outcome::kSoundnessHolds);
}

TEST(TaxonomyTest, WideLocalTestsHitTheResourceBound) {
  // A star with every leaf a terminal: the center's permutation test takes
  // (nodes - 1) + 1 factors, which exceeds the default limit of 6 on 9
  // nodes — and the check fires before the adversary runs.
  ScenarioSpec spec;
  spec.topology.family = TopologyFamily::kStar;
  spec.topology.nodes = 9;
  spec.topology.terminals = 8;
  spec.topology.max_degree = 8;
  spec.yes_probability = 1.0;
  const ScenarioSample wide = draw_scenario(spec, 11);
  Rng rng(0);
  const Adversary exploding = {
      "exploding", "must never run",
      [](const ScenarioSample&, Rng&) -> double {
        throw std::logic_error("resource check must come first");
      },
      [](const ScenarioSample&, Rng&) -> double {
        throw std::logic_error("resource check must come first");
      }};
  EXPECT_EQ(classify(wide, exploding, ClassifyLimits{}, rng),
            Outcome::kResourceBoundExceeded);
  // A generous limit lets the same sample classify normally.
  ClassifyLimits generous;
  generous.max_local_test_factors = 64;
  EXPECT_EQ(classify(wide, stub_adversary(1.0, 0.0), generous, rng),
            Outcome::kCompletenessHolds);
}

// ---------------------------------------------------------------------------
// Depolarized permutation test (the noisy local test primitive)

CVec qubit(double theta) {
  CVec v(2);
  v[0] = Complex(std::cos(theta), 0.0);
  v[1] = Complex(std::sin(theta), 0.0);
  return v;
}

TEST(DepolarizedPermutationTest, ZeroRatesMatchNoiselessTest) {
  const std::vector<CVec> factors = {qubit(0.1), qubit(0.7), qubit(1.1)};
  const std::vector<double> rates(3, 0.0);
  EXPECT_NEAR(depolarized_permutation_test_accept(factors, rates),
              permutation_test_accept(factors), 1e-12);
}

TEST(DepolarizedPermutationTest, TwoFactorsMatchDampedSwapClosedForm) {
  // k = 2 permutation test == SWAP test: accept = (1 + tr(rho sigma)) / 2.
  // Depolarizing |b> at rate p gives tr = (1-p) |<a|b>|^2 + p/d.
  const CVec a = qubit(0.3);
  const CVec b = qubit(1.0);
  const double overlap = std::norm(a.dot(b));
  for (const double p : {0.0, 0.25, 0.6, 1.0}) {
    const double closed = 0.5 * (1.0 + (1.0 - p) * overlap + p / 2.0);
    EXPECT_NEAR(depolarized_permutation_test_accept({a, b}, {0.0, p}),
                closed, 1e-12);
  }
}

TEST(DepolarizedPermutationTest, FullyMixedFactorsGiveUniformOverlap) {
  // All factors fully depolarized: every pairwise overlap becomes 1/d and
  // the acceptance no longer depends on the input states.
  const std::vector<double> rates = {1.0, 1.0};
  const double uniform_ab =
      depolarized_permutation_test_accept({qubit(0.2), qubit(1.3)}, rates);
  const double uniform_cd =
      depolarized_permutation_test_accept({qubit(0.9), qubit(0.4)}, rates);
  EXPECT_NEAR(uniform_ab, uniform_cd, 1e-12);
  EXPECT_NEAR(uniform_ab, 0.5 * (1.0 + 0.5), 1e-12);  // (1 + 1/d)/2, d = 2
}

TEST(DepolarizedPermutationTest, EqualStatesDegradeMonotonically) {
  const std::vector<CVec> factors = {qubit(0.5), qubit(0.5), qubit(0.5)};
  double previous = 1.0;
  for (const double p : {0.0, 0.2, 0.5, 0.9}) {
    const double accept = depolarized_permutation_test_accept(
        factors, {p, p, p});
    EXPECT_LE(accept, previous + 1e-12);
    EXPECT_GE(accept, 0.0);
    EXPECT_LE(accept, 1.0);
    previous = accept;
  }
  EXPECT_NEAR(depolarized_permutation_test_accept(factors, {0.0, 0.0, 0.0}),
              1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Noisy EqGraphProtocol methods

TEST(NoisyEqGraphTest, NoiselessModelMatchesNoiselessMethodsBitwise) {
  const ScenarioSpec spec = small_spec();
  const ScenarioSample sample = draw_scenario(spec, 21);
  const EqGraphProtocol protocol = dqma::scenario::build_protocol(sample);
  const NoiseModel none;
  const Bitstring x = sample.inputs[0];
  EXPECT_EQ(protocol.noisy_completeness(x, none), protocol.completeness(x));
  EXPECT_EQ(protocol.noisy_best_attack_accept(sample.inputs, none),
            protocol.best_attack_accept(sample.inputs));
  const auto proof = protocol.honest_proof(x);
  EXPECT_EQ(protocol.noisy_accept_probability(sample.inputs, proof, none),
            protocol.accept_probability(sample.inputs, proof));
}

TEST(NoisyEqGraphTest, LinkNoiseLowersCompleteness) {
  ScenarioSpec spec = small_spec();
  spec.topology.max_noise = 0.0;
  const ScenarioSample sample = draw_scenario(spec, 33);
  const EqGraphProtocol protocol = dqma::scenario::build_protocol(sample);
  const Bitstring x = sample.inputs[0];
  const double clean = protocol.noisy_completeness(x, NoiseModel());
  EXPECT_NEAR(clean, 1.0, 1e-12);
  const double noisy =
      protocol.noisy_completeness(x, NoiseModel::uniform(0.3));
  EXPECT_LT(noisy, clean);
  EXPECT_GT(noisy, 0.0);
}

}  // namespace

// Tests for the execution engines (chain DP, Monte-Carlo estimation) and
// the util layer (RNG, Table).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "dqma/model.hpp"
#include "dqma/runner.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using dqma::linalg::CVec;
using dqma::protocol::chain_accept;
using dqma::protocol::chain_accept_reps;
using dqma::protocol::estimate;
using dqma::protocol::PathProof;
using dqma::test::chain_swap_overlap_accept;
using dqma::test::haar_states;
using dqma::test::overlap_final_test;
using dqma::test::swap_pair_test;
using dqma::test::uniform_proof;
using dqma::util::Rng;
using dqma::util::Table;

TEST(ChainAcceptTest, ZeroIntermediateNodesIsFinalTestOnly) {
  Rng rng(1);
  const CVec src = dqma::quantum::haar_state(4, rng);
  const double accept =
      chain_accept(src, PathProof{}, swap_pair_test(),
                   [](const CVec& v) { return std::norm(v[0]); });
  EXPECT_NEAR(accept, std::norm(src[0]), 1e-12);
}

TEST(ChainAcceptTest, AllIdenticalRegistersAcceptFully) {
  Rng rng(2);
  const CVec psi = dqma::quantum::haar_state(5, rng);
  const double accept =
      chain_swap_overlap_accept(psi, psi, uniform_proof(psi, 6));
  EXPECT_NEAR(accept, 1.0, 1e-12);
}

TEST(ChainAcceptTest, ResultIsAProbability) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const int inner = 1 + static_cast<int>(rng.next_below(5));
    const CVec src = dqma::quantum::haar_state(3, rng);
    const CVec target = dqma::quantum::haar_state(3, rng);
    PathProof proof;
    proof.reg0 = haar_states(3, inner, rng);
    proof.reg1 = haar_states(3, inner, rng);
    EXPECT_PROBABILITY(chain_swap_overlap_accept(src, target, proof));
  }
}

TEST(ChainAcceptTest, SymmetrizationAveragesTheTwoRegisters) {
  // With one intermediate node, the DP must average the two coin branches
  // explicitly: accept = 1/2 [ t(src, r0) f(r1) + t(src, r1) f(r0) ].
  Rng rng(4);
  const CVec src = dqma::quantum::haar_state(3, rng);
  const CVec r0 = dqma::quantum::haar_state(3, rng);
  const CVec r1 = dqma::quantum::haar_state(3, rng);
  const CVec target = dqma::quantum::haar_state(3, rng);
  PathProof proof;
  proof.reg0.push_back(r0);
  proof.reg1.push_back(r1);
  const auto pair_test = swap_pair_test();
  const auto final_test = overlap_final_test(target);
  const double expected = 0.5 * (pair_test(src, r0) * final_test(r1) +
                                 pair_test(src, r1) * final_test(r0));
  EXPECT_NEAR(chain_swap_overlap_accept(src, target, proof), expected, 1e-12);
}

TEST(ChainAcceptTest, RepetitionsMultiply) {
  Rng rng(5);
  const CVec src = dqma::quantum::haar_state(3, rng);
  const CVec target = dqma::quantum::haar_state(3, rng);
  PathProof proof;
  proof.reg0.push_back(dqma::quantum::haar_state(3, rng));
  proof.reg1.push_back(dqma::quantum::haar_state(3, rng));
  const double one = chain_swap_overlap_accept(src, target, proof);
  const double three =
      chain_accept_reps({src, src, src}, {proof, proof, proof},
                        swap_pair_test(), overlap_final_test(target));
  EXPECT_NEAR(three, one * one * one, 1e-12);
}

TEST(EstimateTest, MeanAndConfidenceInterval) {
  Rng rng(6);
  const auto est = estimate([&]() { return rng.next_bool(0.3) ? 1.0 : 0.0; },
                            20000);
  EXPECT_NEAR(est.mean, 0.3, 0.02);
  EXPECT_LT(est.half_width_95, 0.01);
  EXPECT_EQ(est.samples, 20000);
}

TEST(EstimateTest, DeterministicSampleHasZeroWidth) {
  const auto est = estimate([]() { return 0.75; }, 100);
  EXPECT_DOUBLE_EQ(est.mean, 0.75);
  EXPECT_NEAR(est.half_width_95, 0.0, 1e-9);
}

// --- RNG ----------------------------------------------------------------------
// (Seed-determinism guarantees live in determinism_test.cpp; these cover
// the distributional properties.)

TEST(EstimateTest, VarianceIsStableForLargeOffsets) {
  // The one-pass Welford accumulation must not cancel catastrophically:
  // samples 1e9 and 1e9 + 1 have exact population variance 0.25, which the
  // former sum_sq/count - mean^2 form destroys entirely at this magnitude
  // (1e18 - 1e18 in doubles).
  int calls = 0;
  const auto est = estimate(
      [&calls]() { return 1.0e9 + static_cast<double>(calls++ % 2); }, 1000);
  EXPECT_DOUBLE_EQ(est.mean, 1.0e9 + 0.5);
  // half_width = 1.96 * sqrt(0.25 / 1000)
  EXPECT_NEAR(est.half_width_95, 1.96 * std::sqrt(0.25 / 1000.0), 1e-12);
}

TEST(EstimateTest, RunningStatMatchesEstimate) {
  // The batched Monte-Carlo paths accumulate through RunningStat directly;
  // identical samples must yield identical statistics either way.
  Rng rng_a(99);
  Rng rng_b(99);
  const auto est = estimate([&rng_a]() { return rng_a.next_double(); }, 500);
  dqma::protocol::RunningStat stat;
  for (int i = 0; i < 500; ++i) {
    stat.add(rng_b.next_double());
  }
  const auto direct = stat.finalize();
  EXPECT_EQ(est.mean, direct.mean);
  EXPECT_EQ(est.half_width_95, direct.half_width_95);
  EXPECT_EQ(est.samples, direct.samples);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  std::set<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) {
    values.insert(parent.next_u64());
    values.insert(child.next_u64());
  }
  EXPECT_EQ(values.size(), 128u);
}

TEST(RngTest, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / draws, 1.0, 0.03);
}

TEST(RngTest, NextIntBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

// --- Table ----------------------------------------------------------------------

TEST(TableTest, AlignsColumnsAndSeparators) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2);
}

TEST(TableTest, RejectsMismatchedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

}  // namespace

// Definition 6 cost accounting (model.hpp CostProfile as produced by the
// path protocols): hand-computed values on the 3-node path v_0 - v_1 - v_2
// (r = 2, one intermediate node).
//
// Hand computation for n = 8, delta = 0.3:
//   recommended_block_length = smallest power of two >=
//     2 (n ln 2 + 8) / delta^2 = 2 (5.54518 + 8) / 0.09 = 301.004  =>  512,
//   so one fingerprint register is q = log2(512) = 9 qubits.
// Algorithm 4 with k repetitions on r = 2:
//   local proof  c(v_1)       = 2 k q   (two registers per repetition)
//   total proof  sum_u c(u)   = 2 k q   (v_1 is the only prover target)
//   local message m(v,w)      = k q     (one fingerprint per edge per rep)
//   total message             = 2 k q   (edges v_0 v_1 and v_1 v_2)
#include <gtest/gtest.h>

#include "code/linear_code.hpp"
#include "dqma/eq_path.hpp"
#include "support/test_support.hpp"

namespace {

using dqma::protocol::CostProfile;
using dqma::protocol::EqPathMode;
using dqma::protocol::EqPathProtocol;
using dqma::protocol::PathProofReps;
using dqma::test::SeededTest;
using dqma::util::Bitstring;

constexpr int kN = 8;
constexpr double kDelta = 0.3;
constexpr int kQubits = 9;  // hand-computed above

TEST(CostProfileTest, FingerprintRegisterIsNineQubitsAtN8) {
  EXPECT_EQ(dqma::code::recommended_block_length(kN, kDelta), 512);
  EXPECT_EQ(EqPathProtocol::fingerprint_qubits(kN, kDelta), kQubits);
}

TEST(CostProfileTest, ThreeNodePathSingleRepetition) {
  const EqPathProtocol protocol(kN, /*r=*/2, kDelta, /*reps=*/1);
  const CostProfile c = protocol.costs();
  EXPECT_EQ(c.local_proof_qubits, 2 * kQubits);    // 18
  EXPECT_EQ(c.total_proof_qubits, 2 * kQubits);    // 18
  EXPECT_EQ(c.local_message_qubits, kQubits);      // 9
  EXPECT_EQ(c.total_message_qubits, 2 * kQubits);  // 18
}

TEST(CostProfileTest, ThreeNodePathThreeRepetitions) {
  const int k = 3;
  const EqPathProtocol protocol(kN, /*r=*/2, kDelta, k);
  const CostProfile c = protocol.costs();
  EXPECT_EQ(c.local_proof_qubits, 2 * k * kQubits);    // 54
  EXPECT_EQ(c.total_proof_qubits, 2 * k * kQubits);    // 54
  EXPECT_EQ(c.local_message_qubits, k * kQubits);      // 27
  EXPECT_EQ(c.total_message_qubits, 2 * k * kQubits);  // 54
}

TEST(CostProfileTest, FgnpForwardingHalvesTheProofRegisters) {
  // The FGNP21 baseline keeps ONE register per intermediate node, so proof
  // costs halve while message costs are unchanged.
  const int k = 3;
  const CostProfile c =
      EqPathProtocol::costs_for(kN, 2, kDelta, k, EqPathMode::kFgnpForwarding);
  EXPECT_EQ(c.local_proof_qubits, k * kQubits);        // 27
  EXPECT_EQ(c.total_proof_qubits, k * kQubits);        // 27
  EXPECT_EQ(c.local_message_qubits, k * kQubits);      // 27
  EXPECT_EQ(c.total_message_qubits, 2 * k * kQubits);  // 54
}

TEST(CostProfileTest, CostsForMatchesConstructedInstance) {
  // The formula-level accounting (no code construction) agrees with the
  // instance-level accounting for every mode on the 3-node path.
  for (const auto mode :
       {EqPathMode::kSymmetrized, EqPathMode::kNoSymmetrization,
        EqPathMode::kFgnpForwarding}) {
    const EqPathProtocol protocol(kN, 2, kDelta, 5, mode);
    const CostProfile a = protocol.costs();
    const CostProfile b = EqPathProtocol::costs_for(kN, 2, kDelta, 5, mode);
    EXPECT_EQ(a.local_proof_qubits, b.local_proof_qubits);
    EXPECT_EQ(a.total_proof_qubits, b.total_proof_qubits);
    EXPECT_EQ(a.local_message_qubits, b.local_message_qubits);
    EXPECT_EQ(a.total_message_qubits, b.total_message_qubits);
  }
}

TEST(CostProfileTest, PaperRepetitionCountOnThreeNodePath) {
  // k = ceil(2 * 81 r^2 / 4) = ceil(81 r^2 / 2); r = 2 gives 162.
  EXPECT_EQ(EqPathProtocol::paper_reps(2), 162);
}

class CostProfileProofShapeTest : public SeededTest {};

TEST_F(CostProfileProofShapeTest, HonestProofMatchesAccountedRegisters) {
  // The honest proof must physically contain exactly the registers the
  // CostProfile charges for: per repetition, r - 1 = 1 pair of
  // fingerprint-dimension registers at v_1.
  const int k = 3;
  const EqPathProtocol protocol(kN, 2, kDelta, k);
  const Bitstring x = Bitstring::random(kN, rng());
  const PathProofReps proof = protocol.honest_proof(x);
  ASSERT_EQ(proof.size(), static_cast<std::size_t>(k));
  long long total_qubits = 0;
  for (const auto& rep : proof) {
    ASSERT_EQ(rep.intermediate_nodes(), 1);
    ASSERT_EQ(rep.reg0.size(), rep.reg1.size());
    for (const auto& reg : {rep.reg0[0], rep.reg1[0]}) {
      EXPECT_EQ(reg.dim(), 1 << kQubits);
      EXPECT_NORMALIZED(reg);
      total_qubits += kQubits;
    }
  }
  EXPECT_EQ(total_qubits, protocol.costs().total_proof_qubits);
}

}  // namespace

// Tests for the greater-than protocol (Theorem 26 / Algorithm 7), its
// variants (Corollary 28), and ranking verification (Theorem 29 /
// Algorithm 8).
#include <gtest/gtest.h>

#include <cmath>

#include "dqma/gt.hpp"
#include "dqma/rv.hpp"
#include "network/graph.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace {

using dqma::network::Graph;
using dqma::protocol::gt_predicate;
using dqma::protocol::GtProtocol;
using dqma::protocol::GtVariant;
using dqma::protocol::rv_predicate;
using dqma::protocol::RvProtocol;
using dqma::util::Bitstring;
using dqma::util::Rng;

TEST(GtPredicateTest, MatchesIntegerComparison) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = rng.next_below(1 << 10);
    const auto b = rng.next_below(1 << 10);
    const Bitstring x = Bitstring::from_integer(a, 10);
    const Bitstring y = Bitstring::from_integer(b, 10);
    EXPECT_EQ(gt_predicate(GtVariant::kGreater, x, y), a > b);
    EXPECT_EQ(gt_predicate(GtVariant::kLess, x, y), a < b);
    EXPECT_EQ(gt_predicate(GtVariant::kGeq, x, y), a >= b);
    EXPECT_EQ(gt_predicate(GtVariant::kLeq, x, y), a <= b);
  }
}

TEST(GtProtocolTest, FingerprintInputPadsPrefixes) {
  const GtProtocol protocol(8, 3, 0.3, 1);
  const Bitstring x = Bitstring::from_string("10110010");
  EXPECT_EQ(protocol.fingerprint_input(x, 0).to_string(), "00000000");
  EXPECT_EQ(protocol.fingerprint_input(x, 3).to_string(), "10100000");
  EXPECT_EQ(protocol.fingerprint_input(x, 8).to_string(), "10110010");
}

class GtCompletenessTest
    : public ::testing::TestWithParam<GtVariant> {};

TEST_P(GtCompletenessTest, PerfectCompletenessOnYesInstances) {
  const GtVariant variant = GetParam();
  Rng rng(2);
  const int n = 12;
  int found = 0;
  while (found < 10) {
    const Bitstring x = Bitstring::random(n, rng);
    const Bitstring y = Bitstring::random(n, rng);
    if (!gt_predicate(variant, x, y)) {
      continue;
    }
    ++found;
    const GtProtocol protocol(n, 4, 0.3, 3, variant);
    EXPECT_NEAR(protocol.completeness(x, y), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, GtCompletenessTest,
                         ::testing::Values(GtVariant::kGreater,
                                           GtVariant::kLess, GtVariant::kGeq,
                                           GtVariant::kLeq));

TEST(GtProtocolTest, EqualInputsUseTheSentinel) {
  Rng rng(3);
  const Bitstring x = Bitstring::random(12, rng);
  const GtProtocol geq(12, 3, 0.3, 2, GtVariant::kGeq);
  EXPECT_NEAR(geq.completeness(x, x), 1.0, 1e-9);
  const auto s = geq.honest_strategy(x, x);
  EXPECT_EQ(s.index, 12);
  // The strict variant has no honest strategy on equal inputs.
  const GtProtocol strict(12, 3, 0.3, 2, GtVariant::kGreater);
  EXPECT_THROW(strict.honest_strategy(x, x), std::invalid_argument);
}

TEST(GtProtocolTest, SoundnessWithPaperRepetitions) {
  Rng rng(4);
  const int n = 10;
  for (int r : {2, 4}) {
    const GtProtocol protocol(n, r, 0.3, 2 * 81 * r * r / 4 + 1,
                              GtVariant::kGreater);
    int checked = 0;
    while (checked < 5) {
      const Bitstring x = Bitstring::random(n, rng);
      const Bitstring y = Bitstring::random(n, rng);
      if (gt_predicate(GtVariant::kGreater, x, y)) {
        continue;  // need a no instance
      }
      ++checked;
      EXPECT_LE(protocol.best_attack_accept(x, y), 1.0 / 3.0)
          << x.to_string() << " vs " << y.to_string();
    }
  }
}

TEST(GtProtocolTest, NoAdmissibleIndexMeansZeroAcceptance) {
  // x = 0000, y = 1111: no index has x_i = 1, so every strategy is
  // rejected deterministically by v_0.
  const GtProtocol protocol(4, 3, 0.3, 2, GtVariant::kGreater);
  const Bitstring x = Bitstring::from_string("0000");
  const Bitstring y = Bitstring::from_string("1111");
  EXPECT_EQ(protocol.best_attack_accept(x, y), 0.0);
}

TEST(GtProtocolTest, LyingIndexIsCaughtByPrefixFingerprints) {
  // x = 0110, y = 1001 (x < y): index 1 has x_1 = 1, y_1 = 0 but prefixes
  // x[1] = 0, y[1] = 1 differ, so the EQ chain must be cheated.
  const int r = 3;
  const GtProtocol protocol(4, r, 0.3, 2 * 81 * r * r / 4, GtVariant::kGreater);
  const Bitstring x = Bitstring::from_string("0110");
  const Bitstring y = Bitstring::from_string("1001");
  const double attack = protocol.best_attack_accept(x, y);
  EXPECT_GT(attack, 0.0);       // an admissible lying index exists
  EXPECT_LE(attack, 1.0 / 3.0); // but the prefix chain catches it
}

TEST(GtProtocolTest, CostsIncludeIndexRegisters) {
  const GtProtocol protocol(64, 5, 0.3, 10);
  const auto c = protocol.costs();
  // Index register of ceil(log2(65)) = 7 qubits at each of r+1 nodes.
  EXPECT_GE(c.total_proof_qubits, 7 * 6);
  EXPECT_GT(c.local_message_qubits, 10 * 7);
}

// --- ranking verification ---------------------------------------------------

TEST(RvPredicateTest, RanksDistinctInputs) {
  // inputs: 5, 9, 1 -> ranks: 9 is 1st, 5 is 2nd, 1 is 3rd.
  const std::vector<Bitstring> inputs{Bitstring::from_integer(5, 6),
                                      Bitstring::from_integer(9, 6),
                                      Bitstring::from_integer(1, 6)};
  EXPECT_TRUE(rv_predicate(inputs, 1, 1));
  EXPECT_TRUE(rv_predicate(inputs, 0, 2));
  EXPECT_TRUE(rv_predicate(inputs, 2, 3));
  EXPECT_FALSE(rv_predicate(inputs, 0, 1));
  EXPECT_FALSE(rv_predicate(inputs, 2, 1));
}

TEST(RvProtocolTest, PerfectCompletenessOnYesInstances) {
  Rng rng(5);
  const Graph g = Graph::star(3);
  const std::vector<int> terminals{1, 2, 3};
  const std::vector<Bitstring> inputs{Bitstring::from_integer(12, 8),
                                      Bitstring::from_integer(40, 8),
                                      Bitstring::from_integer(3, 8)};
  // Terminal 1 (value 40) is rank 1.
  const RvProtocol protocol(g, terminals, 1, 1, 8, 0.3, 3);
  EXPECT_NEAR(protocol.completeness(inputs), 1.0, 1e-9);
  // Terminal 0 (value 12) is rank 2.
  const RvProtocol p2(g, terminals, 0, 2, 8, 0.3, 3);
  EXPECT_NEAR(p2.completeness(inputs), 1.0, 1e-9);
}

TEST(RvProtocolTest, HonestProverFailsCountCheckOnNoInstances) {
  const Graph g = Graph::star(3);
  const std::vector<int> terminals{1, 2, 3};
  const std::vector<Bitstring> inputs{Bitstring::from_integer(12, 8),
                                      Bitstring::from_integer(40, 8),
                                      Bitstring::from_integer(3, 8)};
  const RvProtocol protocol(g, terminals, 0, 1, 8, 0.3, 3);  // 12 is not max
  EXPECT_EQ(protocol.completeness(inputs), 0.0);
}

TEST(RvProtocolTest, LyingDirectionsAreCaught) {
  const Graph g = Graph::star(3);
  const std::vector<int> terminals{1, 2, 3};
  const std::vector<Bitstring> inputs{Bitstring::from_integer(12, 8),
                                      Bitstring::from_integer(40, 8),
                                      Bitstring::from_integer(3, 8)};
  // Claim terminal 0 (value 12) is rank 1: the prover must lie about the
  // pair (12, 40) and cheat a GT>= sub-protocol.
  const int reps = 2 * 81 * 2 * 2;  // paths in this tree have length <= 2
  const RvProtocol protocol(g, terminals, 0, 1, 8, 0.3, reps);
  EXPECT_LE(protocol.best_attack_accept(inputs), 1.0 / 3.0);
}

TEST(RvProtocolTest, AttackOnYesInstanceIsPerfect) {
  // On yes instances the "attack" needs no lies: acceptance 1.
  const Graph g = Graph::star(3);
  const std::vector<int> terminals{1, 2, 3};
  const std::vector<Bitstring> inputs{Bitstring::from_integer(12, 8),
                                      Bitstring::from_integer(40, 8),
                                      Bitstring::from_integer(3, 8)};
  const RvProtocol protocol(g, terminals, 1, 1, 8, 0.3, 5);
  EXPECT_NEAR(protocol.best_attack_accept(inputs), 1.0, 1e-9);
}

TEST(RvProtocolTest, CostsScaleWithTerminals) {
  const Graph g5 = Graph::star(5);
  const Graph g3 = Graph::star(3);
  const RvProtocol p5(g5, {1, 2, 3, 4, 5}, 0, 1, 16, 0.3, 4);
  const RvProtocol p3(g3, {1, 2, 3}, 0, 1, 16, 0.3, 4);
  EXPECT_GT(p5.costs().total_proof_qubits, p3.costs().total_proof_qubits);
}

}  // namespace

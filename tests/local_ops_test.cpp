// Randomized property tests for the matrix-free local-operator engine
// (quantum/local_ops.hpp): every entry point is cross-validated against the
// embed_operator reference on random shapes and register subsets — pure and
// mixed states, including non-adjacent and permuted register lists — plus
// structural checks of the plan tables and determinism pins for the bench
// series seeded on top of the engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dqma/exact_runner.hpp"
#include "linalg/eigen.hpp"
#include "quantum/density.hpp"
#include "quantum/local_ops.hpp"
#include "quantum/random.hpp"
#include "quantum/state.hpp"
#include "quantum/unitary.hpp"
#include "support/test_support.hpp"
#include "util/tolerance.hpp"

namespace {

using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::protocol::ExactEqPathAnalyzer;
using dqma::quantum::apply_left_local;
using dqma::quantum::apply_local;
using dqma::quantum::apply_right_local;
using dqma::quantum::Density;
using dqma::quantum::embed_operator;
using dqma::quantum::expectation_local;
using dqma::quantum::haar_state;
using dqma::quantum::haar_unitary;
using dqma::quantum::LocalOpPlan;
using dqma::quantum::project_local;
using dqma::quantum::PureState;
using dqma::quantum::RegisterShape;
using dqma::quantum::sandwich_local;
using dqma::test::SeededTest;
using dqma::util::Rng;

/// Shapes and register subsets exercised by every property test: mixed
/// register dimensions, adjacent and non-adjacent subsets, permuted lists.
struct Case {
  std::vector<int> dims;
  std::vector<int> regs;
};

std::vector<Case> property_cases() {
  return {
      {{2, 3}, {0}},
      {{2, 3}, {1}},
      {{2, 3, 2}, {0, 2}},     // non-adjacent
      {{2, 3, 2}, {2, 0}},     // non-adjacent, permuted
      {{3, 2, 2}, {1, 0}},     // permuted pair
      {{2, 2, 3, 2}, {3, 1}},  // strided, permuted
      {{2, 2, 2, 2}, {0, 1, 2, 3}},
      {{4, 3, 2}, {1}},
  };
}

/// A random mixed state's matrix on the shape (convex mix of projectors).
CMat random_mixed_matrix(const RegisterShape& shape, Rng& rng) {
  const int d = static_cast<int>(shape.total_dim());
  CMat rho = CMat::projector(haar_state(d, rng));
  rho.blend(CMat::projector(haar_state(d, rng)), Complex{0.6, 0.0},
            Complex{0.4, 0.0});
  return rho;
}

class LocalOpsPropertyTest : public SeededTest {};

TEST_F(LocalOpsPropertyTest, PlanOffsetsMatchShapeFlatten) {
  const RegisterShape shape({2, 3, 2});
  const LocalOpPlan plan(shape, {2, 0});
  EXPECT_EQ(plan.block(), 4);
  EXPECT_EQ(plan.total_dim(), 12);
  EXPECT_EQ(plan.free_offsets().size(), 3u);
  // target assignment b = (i_2, i_0) row-major over the listed order; free
  // register 1 at value f. Offsets must agree with RegisterShape::flatten.
  for (int i2 = 0; i2 < 2; ++i2) {
    for (int i0 = 0; i0 < 2; ++i0) {
      const long long b = i2 * 2 + i0;
      for (int f = 0; f < 3; ++f) {
        const long long flat = shape.flatten({i0, f, i2});
        EXPECT_EQ(plan.target_offsets()[static_cast<std::size_t>(b)] +
                      plan.free_offsets()[static_cast<std::size_t>(f)],
                  flat);
      }
    }
  }
}

TEST_F(LocalOpsPropertyTest, PlanRejectsBadRegisters) {
  const RegisterShape shape({2, 3});
  EXPECT_THROW(LocalOpPlan(shape, {2}), std::invalid_argument);
  EXPECT_THROW(LocalOpPlan(shape, {-1}), std::invalid_argument);
  EXPECT_THROW(LocalOpPlan(shape, {1, 1}), std::invalid_argument);
}

TEST_F(LocalOpsPropertyTest, ApplyLocalMatchesEmbeddedOperator) {
  for (const Case& c : property_cases()) {
    const RegisterShape shape(c.dims);
    const int total = static_cast<int>(shape.total_dim());
    long long block = 1;
    for (const int r : c.regs) block *= shape.dim(r);
    const CMat u = haar_unitary(static_cast<int>(block), rng());
    CVec psi = haar_state(total, rng());
    const CVec expected = embed_operator(shape, u, c.regs) * psi;
    apply_local(shape, u, c.regs, psi);
    EXPECT_STATE_NEAR(psi, expected);
  }
}

TEST_F(LocalOpsPropertyTest, PureExpectationMatchesEmbeddedOperator) {
  for (const Case& c : property_cases()) {
    const RegisterShape shape(c.dims);
    const int total = static_cast<int>(shape.total_dim());
    long long block = 1;
    for (const int r : c.regs) block *= shape.dim(r);
    // Hermitian effect: projector onto a random local state.
    const CMat effect = CMat::projector(haar_state(static_cast<int>(block), rng()));
    const CVec psi = haar_state(total, rng());
    const CVec image = embed_operator(shape, effect, c.regs) * psi;
    const LocalOpPlan plan(shape, c.regs);
    EXPECT_NEAR(expectation_local(plan, effect, psi), psi.dot(image).real(),
                1e-10);
  }
}

TEST_F(LocalOpsPropertyTest, MixedExpectationMatchesEmbeddedOperator) {
  for (const Case& c : property_cases()) {
    const RegisterShape shape(c.dims);
    long long block = 1;
    for (const int r : c.regs) block *= shape.dim(r);
    const CMat effect =
        CMat::projector(haar_state(static_cast<int>(block), rng()));
    const CMat rho = random_mixed_matrix(shape, rng());
    const CMat big = embed_operator(shape, effect, c.regs);
    const LocalOpPlan plan(shape, c.regs);
    EXPECT_NEAR(expectation_local(plan, effect, rho),
                (big * rho).trace().real(), 1e-10);
  }
}

TEST_F(LocalOpsPropertyTest, LeftRightApplicationMatchesEmbeddedProducts) {
  for (const Case& c : property_cases()) {
    const RegisterShape shape(c.dims);
    long long block = 1;
    for (const int r : c.regs) block *= shape.dim(r);
    const CMat u = haar_unitary(static_cast<int>(block), rng());
    const CMat big = embed_operator(shape, u, c.regs);
    const CMat a = random_mixed_matrix(shape, rng());
    const LocalOpPlan plan(shape, c.regs);

    CMat left = a;
    apply_left_local(plan, u, left);
    EXPECT_DENSITY_NEAR_TOL(left, big * a, 1e-10);

    CMat left_adj = a;
    apply_left_local(plan, u, left_adj, /*adjoint_op=*/true);
    EXPECT_DENSITY_NEAR_TOL(left_adj, big.adjoint() * a, 1e-10);

    CMat right = a;
    apply_right_local(plan, u, right);
    EXPECT_DENSITY_NEAR_TOL(right, a * big, 1e-10);

    CMat right_adj = a;
    apply_right_local(plan, u, right_adj, /*adjoint_op=*/true);
    EXPECT_DENSITY_NEAR_TOL(right_adj, a * big.adjoint(), 1e-10);
  }
}

TEST_F(LocalOpsPropertyTest, SandwichMatchesEmbeddedConjugation) {
  for (const Case& c : property_cases()) {
    const RegisterShape shape(c.dims);
    long long block = 1;
    for (const int r : c.regs) block *= shape.dim(r);
    const CMat u = haar_unitary(static_cast<int>(block), rng());
    const CMat big = embed_operator(shape, u, c.regs);
    const CMat rho = random_mixed_matrix(shape, rng());
    CMat conjugated = rho;
    const LocalOpPlan plan(shape, c.regs);
    sandwich_local(plan, u, conjugated);
    EXPECT_DENSITY_NEAR_TOL(conjugated, big * rho * big.adjoint(), 1e-10);
  }
}

TEST_F(LocalOpsPropertyTest, ProjectLocalMatchesEmbeddedProjection) {
  for (const Case& c : property_cases()) {
    const RegisterShape shape(c.dims);
    long long block = 1;
    for (const int r : c.regs) block *= shape.dim(r);
    const CMat effect =
        CMat::projector(haar_state(static_cast<int>(block), rng()));
    const CMat big = embed_operator(shape, effect, c.regs);
    const CMat rho = random_mixed_matrix(shape, rng());

    CMat projected = rho;
    const LocalOpPlan plan(shape, c.regs);
    const double p = project_local(plan, effect, projected);

    CMat expected = big * rho * big.adjoint();
    const double p_ref = expected.trace().real();
    EXPECT_NEAR(p, p_ref, 1e-10);
    ASSERT_GT(p, 1e-6);  // haar projections virtually never annihilate rho
    expected *= Complex{1.0 / p_ref, 0.0};
    EXPECT_DENSITY_NEAR_TOL(projected, expected, 1e-9);
  }
}

TEST_F(LocalOpsPropertyTest, ProjectLocalLeavesStateOnZeroBranch) {
  // Effect orthogonal to the state: |1><1| on a |0> register.
  const RegisterShape shape({2, 2});
  const Density rho = Density::from_pure(PureState(shape));
  CMat m = rho.matrix();
  CMat effect(2, 2);
  effect(1, 1) = Complex{1.0, 0.0};
  const LocalOpPlan plan(shape, {0});
  EXPECT_EQ(project_local(plan, effect, m), 0.0);
  EXPECT_DENSITY_NEAR_TOL(m, rho.matrix(), 1e-15);
}

TEST_F(LocalOpsPropertyTest, DensityEntryPointsMatchEmbeddedReference) {
  // The Density member functions (now matrix-free) against the embedded
  // formulas they replaced, on a permuted non-adjacent register pair.
  const RegisterShape shape({2, 3, 2});
  const std::vector<int> regs{2, 0};
  const CVec psi = haar_state(12, rng());
  const CMat u = haar_unitary(4, rng());
  const CMat big = embed_operator(shape, u, regs);

  Density rho = Density::from_pure(PureState(shape, psi));
  const CMat reference = big * rho.matrix() * big.adjoint();
  rho.apply(u, regs);
  EXPECT_DENSITY_NEAR_TOL(rho.matrix(), reference, 1e-10);

  const CMat effect = CMat::projector(haar_state(4, rng()));
  const CMat big_effect = embed_operator(shape, effect, regs);
  EXPECT_NEAR(rho.expectation(effect, regs),
              (big_effect * rho.matrix()).trace().real(), 1e-10);
}

TEST_F(LocalOpsPropertyTest, AdjointAwareMultipliesMatchMaterializedAdjoint) {
  const CMat a = haar_unitary(5, rng());
  const CMat b = haar_unitary(5, rng());
  EXPECT_DENSITY_NEAR_TOL(a.adjoint_times(b), a.adjoint() * b, 1e-12);
  EXPECT_DENSITY_NEAR_TOL(a.times_adjoint(b), a * b.adjoint(), 1e-12);
}

// ---------------------------------------------------------------------------
// Exact engine: streamed dense assembly and matrix-free mode
// ---------------------------------------------------------------------------

class ExactEngineModesTest : public SeededTest {};

TEST_F(ExactEngineModesTest, StreamedOperatorMatchesEmbeddedAssembly) {
  // Reassemble the r = 3 acceptance operator exactly as the pre-engine code
  // did — products of embedded effects, averaged over patterns — and
  // compare with the streamed dense assembly.
  const int d = 2;
  const CVec hx = haar_state(d, rng());
  const CVec hy = haar_state(d, rng());
  const ExactEqPathAnalyzer analyzer(hx, hy, 3,
                                     ExactEqPathAnalyzer::Mode::kDense);

  const RegisterShape shape({d, d, d, d});
  CMat first = CMat::identity(d);
  first += CMat::projector(hx);
  first *= Complex{0.5, 0.0};
  CMat swap_effect = dqma::quantum::swap_unitary(d);
  swap_effect += CMat::identity(d * d);
  swap_effect *= Complex{0.5, 0.0};
  const CMat final_effect = CMat::projector(hy);

  const long long dim = shape.total_dim();
  CMat reference(static_cast<int>(dim), static_cast<int>(dim));
  for (int pattern = 0; pattern < 4; ++pattern) {
    const int kept1 = (pattern >> 0) & 1;
    const int kept2 = 2 + ((pattern >> 1) & 1);
    const int sent1 = 1 - kept1;
    const int sent2 = 2 + (1 - ((pattern >> 1) & 1));
    CMat term = embed_operator(shape, first, {kept1});
    term = term * embed_operator(shape, swap_effect, {sent1, kept2});
    term = term * embed_operator(shape, final_effect, {sent2});
    reference += term;
  }
  reference *= Complex{0.25, 0.0};
  EXPECT_DENSITY_NEAR_TOL(analyzer.acceptance_operator(), reference, 1e-12);
}

TEST_F(ExactEngineModesTest, MatrixFreeApplicationMatchesDenseOperator) {
  for (const int r : {2, 3, 4}) {
    const CVec hx = haar_state(2, rng());
    const CVec hy = haar_state(2, rng());
    const ExactEqPathAnalyzer dense(hx, hy, r,
                                    ExactEqPathAnalyzer::Mode::kDense);
    const ExactEqPathAnalyzer free(hx, hy, r,
                                   ExactEqPathAnalyzer::Mode::kMatrixFree);
    EXPECT_FALSE(free.dense());
    const CVec psi =
        haar_state(static_cast<int>(dense.proof_dim()), rng());
    EXPECT_STATE_NEAR_TOL(free.apply_acceptance(psi),
                          dense.acceptance_operator() * psi, 1e-11);
  }
}

TEST_F(ExactEngineModesTest, MatrixFreeWorstCaseMatchesDense) {
  const CVec hx = CVec::basis(2, 0);
  CVec hy(2);
  hy[0] = Complex{0.2, 0.0};
  hy[1] = Complex{std::sqrt(1.0 - 0.04), 0.0};
  for (const int r : {2, 3, 4}) {
    const ExactEqPathAnalyzer dense(hx, hy, r,
                                    ExactEqPathAnalyzer::Mode::kDense);
    const ExactEqPathAnalyzer free(hx, hy, r,
                                   ExactEqPathAnalyzer::Mode::kMatrixFree);
    EXPECT_NEAR(free.worst_case_accept(4000), dense.worst_case_accept(4000),
                1e-6);
  }
}

TEST_F(ExactEngineModesTest, MatrixFreeProductAcceptMatchesDenseQuadraticForm) {
  for (const int r : {2, 3, 4}) {
    const CVec hx = haar_state(3, rng());
    const CVec hy = haar_state(3, rng());
    const ExactEqPathAnalyzer dense(hx, hy, r,
                                    ExactEqPathAnalyzer::Mode::kDense);
    const ExactEqPathAnalyzer free(hx, hy, r,
                                   ExactEqPathAnalyzer::Mode::kMatrixFree);
    std::vector<CVec> regs;
    CVec flat(1);
    flat[0] = Complex{1.0, 0.0};
    for (int k = 0; k < 2 * (r - 1); ++k) {
      regs.push_back(haar_state(3, rng()));
      flat = flat.tensor(regs.back());
    }
    const double quadratic = std::max(
        0.0, flat.dot(dense.acceptance_operator() * flat).real());
    EXPECT_NEAR(free.product_accept(regs), quadratic, 1e-10);
    EXPECT_NEAR(dense.product_accept(regs), quadratic, 1e-10);
  }
}

TEST_F(ExactEngineModesTest, BestProductAgreesAcrossModes) {
  const CVec hx = CVec::basis(2, 0);
  CVec hy(2);
  hy[0] = Complex{0.3, 0.0};
  hy[1] = Complex{std::sqrt(1.0 - 0.09), 0.0};
  const ExactEqPathAnalyzer dense(hx, hy, 3,
                                  ExactEqPathAnalyzer::Mode::kDense);
  const ExactEqPathAnalyzer free(hx, hy, 3,
                                 ExactEqPathAnalyzer::Mode::kMatrixFree);
  Rng rng_dense(1234);
  Rng rng_free(1234);
  EXPECT_NEAR(dense.best_product_accept(rng_dense, 4, 40),
              free.best_product_accept(rng_free, 4, 40), 1e-8);
}

TEST_F(ExactEngineModesTest, MatrixFreeModeReachesBeyondTheOldDenseCap) {
  // d = 4, r = 5: proof dimension 4^8 = 65536 > 2^14 (the old engine cap).
  const CVec hx = CVec::basis(4, 0);
  const CVec hy = CVec::basis(4, 1);
  const ExactEqPathAnalyzer analyzer(hx, hy, 5,
                                     ExactEqPathAnalyzer::Mode::kMatrixFree);
  EXPECT_EQ(analyzer.proof_dim(), 65536);
  EXPECT_GT(analyzer.proof_dim(), 1 << 14);
  // Orthogonal endpoints, honest all-|h_x> proof: the final measurement
  // never accepts, every swap test does, so acceptance is 0.
  std::vector<CVec> honest(8, hx);
  EXPECT_NEAR(analyzer.product_accept(honest), 0.0, 1e-12);
  // The identical-endpoints analyzer accepts the honest proof with
  // certainty.
  const ExactEqPathAnalyzer complete(hx, hx, 5,
                                     ExactEqPathAnalyzer::Mode::kMatrixFree);
  EXPECT_NEAR(complete.product_accept(honest), 1.0, 1e-12);
}

}  // namespace

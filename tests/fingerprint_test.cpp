// Tests for linear codes and quantum fingerprints.
#include <gtest/gtest.h>

#include <cmath>

#include "code/linear_code.hpp"
#include "fingerprint/fingerprint.hpp"
#include "support/test_support.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace {

using dqma::code::LinearCode;
using dqma::code::recommended_block_length;
using dqma::fingerprint::FingerprintScheme;
using dqma::util::Bitstring;
using dqma::util::Rng;

TEST(BitstringTest, FromIntegerBigEndian) {
  const Bitstring b = Bitstring::from_integer(5, 4);  // 0101
  EXPECT_EQ(b.to_string(), "0101");
  EXPECT_EQ(b.to_integer(), 5u);
}

TEST(BitstringTest, CompareMatchesIntegerOrder) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = rng.next_below(1 << 12);
    const auto y = rng.next_below(1 << 12);
    const Bitstring bx = Bitstring::from_integer(x, 12);
    const Bitstring by = Bitstring::from_integer(y, 12);
    EXPECT_EQ(bx < by, x < y);
    EXPECT_EQ(bx == by, x == y);
  }
}

TEST(BitstringTest, XorAndDistance) {
  const Bitstring a = Bitstring::from_string("1100");
  const Bitstring b = Bitstring::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ(a.distance(b), 2);
  EXPECT_EQ(a.weight(), 2);
}

TEST(BitstringTest, PrefixExtraction) {
  const Bitstring a = Bitstring::from_string("10110");
  EXPECT_EQ(a.prefix(0).size(), 0);
  EXPECT_EQ(a.prefix(3).to_string(), "101");
  EXPECT_EQ(a.prefix(5).to_string(), "10110");
}

TEST(BitstringTest, RandomAtDistanceIsExact) {
  Rng rng(2);
  const Bitstring base = Bitstring::random(100, rng);
  for (int d : {0, 1, 5, 50, 100}) {
    const Bitstring other = Bitstring::random_at_distance(base, d, rng);
    EXPECT_EQ(base.distance(other), d);
  }
}

TEST(BitstringTest, HashDiffersOnDifferentStrings) {
  const Bitstring a = Bitstring::from_string("1100");
  const Bitstring b = Bitstring::from_string("1010");
  EXPECT_NE(a.hash(), b.hash());
}

TEST(LinearCodeTest, EncodeIsLinear) {
  Rng rng(3);
  const LinearCode code(16, 64, /*seed=*/7);
  for (int trial = 0; trial < 50; ++trial) {
    const Bitstring x = Bitstring::random(16, rng);
    const Bitstring y = Bitstring::random(16, rng);
    EXPECT_EQ(code.encode(x ^ y), code.encode(x) ^ code.encode(y));
  }
}

TEST(LinearCodeTest, SameSeedSameCode) {
  const LinearCode a(12, 32, 99);
  const LinearCode b(12, 32, 99);
  Rng rng(4);
  const Bitstring x = Bitstring::random(12, rng);
  EXPECT_EQ(a.encode(x), b.encode(x));
}

TEST(LinearCodeTest, ExhaustiveDistanceIsReasonable) {
  // Random [128, 10] code: expected min distance near 64, and certainly a
  // constant fraction of the block length.
  const LinearCode code(10, 128, 5);
  const int d = code.min_distance_exhaustive();
  EXPECT_GT(d, 32);
  EXPECT_LT(d, 96);
}

TEST(LinearCodeTest, RecommendedBlockLengthIsPowerOfTwoAndMonotone) {
  const int m1 = recommended_block_length(32, 0.3);
  const int m2 = recommended_block_length(64, 0.3);
  EXPECT_EQ(m1 & (m1 - 1), 0);
  EXPECT_LE(m1, m2);
  // Smaller delta needs longer blocks.
  EXPECT_LT(m1, recommended_block_length(32, 0.1));
}

TEST(FingerprintTest, OverlapClosedFormMatchesStateDot) {
  Rng rng(6);
  const FingerprintScheme scheme(12, /*delta=*/0.35, /*seed=*/11);
  for (int trial = 0; trial < 20; ++trial) {
    const Bitstring x = Bitstring::random(12, rng);
    const Bitstring y = Bitstring::random(12, rng);
    const double closed = scheme.overlap(x, y);
    const double direct = scheme.state(x).dot(scheme.state(y)).real();
    EXPECT_NEAR(closed, direct, 1e-10);
  }
}

TEST(FingerprintTest, SelfOverlapIsOne) {
  Rng rng(7);
  const FingerprintScheme scheme(20, 0.3);
  const Bitstring x = Bitstring::random(20, rng);
  EXPECT_NEAR(scheme.overlap(x, x), 1.0, 1e-12);
  EXPECT_NORMALIZED(scheme.state(x));
}

TEST(FingerprintTest, ExhaustiveOverlapBoundHolds) {
  // For a small input length, check *every* pair satisfies the delta bound
  // (equivalently: every nonzero message has near-balanced codeword).
  const FingerprintScheme scheme(10, /*delta=*/0.35, /*seed=*/13);
  const double worst = scheme.code().max_overlap_exhaustive();
  EXPECT_LE(worst, scheme.delta());
}

TEST(FingerprintTest, QubitCountIsLogOfDim) {
  const FingerprintScheme scheme(64, 0.3);
  EXPECT_EQ(1 << scheme.qubits(), scheme.dim());
}

TEST(FingerprintTest, QubitCountGrowsLogarithmically) {
  const FingerprintScheme s1(64, 0.3);
  const FingerprintScheme s2(4096, 0.3);
  // n grew 64x; qubits should grow by ~log2(64) = 6.
  EXPECT_LE(s2.qubits() - s1.qubits(), 8);
  EXPECT_GE(s2.qubits() - s1.qubits(), 4);
}

TEST(FingerprintTest, BottomStateIsNormalizedUniform) {
  const FingerprintScheme scheme(8, 0.3);
  const auto bot = scheme.bottom_state();
  EXPECT_NORMALIZED(bot);
  EXPECT_NEAR(bot[0].real(), bot[scheme.dim() - 1].real(), 1e-12);
}

TEST(FingerprintTest, SampledOverlapBoundOnLargeInputs) {
  Rng rng(8);
  const FingerprintScheme scheme(256, 0.3, 17);
  EXPECT_LE(scheme.code().max_overlap_sampled(500, rng), scheme.delta());
}

}  // namespace

// Tests for the classical dMA baselines, the constructive lower-bound
// attacks (Sec. 4.2), and the quantum counting arguments (Sec. 8.1).
#include <gtest/gtest.h>

#include <cmath>

#include "dma/attacks.hpp"
#include "dma/dma_protocols.hpp"
#include "lowerbound/accounting.hpp"
#include "lowerbound/counting.hpp"
#include "lowerbound/fooling.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace {

using dqma::dma::collision_attack_soundness_error;
using dqma::dma::find_tag_collision;
using dqma::dma::HashDmaEq;
using dqma::dma::PrefixDmaEq;
using dqma::dma::TrivialDmaEq;
using dqma::dma::ZeroWindowDmaEq;
using dqma::test::random_unequal_pair;
using dqma::test::random_unequal_to;
using dqma::util::Bitstring;
using dqma::util::Rng;
namespace lb = dqma::lowerbound;

TEST(DmaProtocolTest, TrivialProtocolIsCompleteAndSound) {
  Rng rng(1);
  const TrivialDmaEq protocol(12, 5);
  const Bitstring x = Bitstring::random(12, rng);
  EXPECT_TRUE(protocol.accepts(x, x, protocol.honest_proof(x)));
  const Bitstring y = random_unequal_to(x, rng);
  // Any proof is rejected on a no instance: the tag chain must match both
  // x and y.
  EXPECT_FALSE(protocol.accepts(x, y, protocol.honest_proof(x)));
  EXPECT_FALSE(protocol.accepts(x, y, protocol.honest_proof(y)));
  EXPECT_EQ(find_tag_collision(protocol, 1 << 12, rng), std::nullopt);
}

TEST(DmaProtocolTest, TamperedProofIsLocalized) {
  Rng rng(2);
  const TrivialDmaEq protocol(10, 6);
  const Bitstring x = Bitstring::random(10, rng);
  auto proof = protocol.honest_proof(x);
  proof[2].flip(0);
  const auto verdicts = protocol.node_verdicts(x, x, proof);
  // Node v_2 or v_3 (the cross-checkers of entry 2) must reject.
  EXPECT_TRUE(!verdicts[2] || !verdicts[3]);
}

TEST(DmaAttackTest, SmallHashIsBrokenByCollision) {
  Rng rng(3);
  // 2^6 tags over 2^12 inputs: collisions guaranteed.
  const HashDmaEq protocol(12, 5, 6);
  const auto pair = find_tag_collision(protocol, 0, rng);
  ASSERT_TRUE(pair.has_value());
  EXPECT_NE(pair->first, pair->second);
  EXPECT_EQ(protocol.tag(pair->first), protocol.tag(pair->second));
  EXPECT_EQ(collision_attack_soundness_error(protocol, 0, rng), 1.0);
}

TEST(DmaAttackTest, LargeHashResistsTheBirthdaySearch) {
  Rng rng(4);
  // 2^50 tags over 2^12 inputs: exhaustive search finds no collision.
  const HashDmaEq protocol(12, 5, 50);
  EXPECT_EQ(collision_attack_soundness_error(protocol, 0, rng), 0.0);
}

TEST(DmaAttackTest, ThresholdMatchesLemma23Shape) {
  // Sweeping the budget: below ~n bits the protocol breaks, at n bits
  // (trivial tag) it is sound. This is Corollary 25's per-node shape.
  Rng rng(5);
  const int n = 14;
  for (int bits : {4, 8, 12}) {
    const HashDmaEq weak(n, 4, bits);
    EXPECT_EQ(collision_attack_soundness_error(weak, 0, rng), 1.0)
        << "bits=" << bits;
  }
  const HashDmaEq strong(n, 4, 48);
  EXPECT_EQ(collision_attack_soundness_error(strong, 0, rng), 0.0);
}

TEST(DmaAttackTest, PrefixTagCollision) {
  Rng rng(6);
  const PrefixDmaEq protocol(12, 4, 5);
  const auto pair = find_tag_collision(protocol, 0, rng);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->first.prefix(5), pair->second.prefix(5));
}

TEST(DmaGapTest, ZeroWindowSpliceIsAcceptedEverywhere) {
  // Lemma 53's classical analog: two consecutive proof-free nodes break
  // soundness completely, regardless of how many bits the other nodes get.
  Rng rng(7);
  const ZeroWindowDmaEq protocol(16, 8, 4);
  const auto [x, y] = random_unequal_pair(16, rng);
  EXPECT_TRUE(protocol.accepts(x, x, protocol.honest_proof(x)));
  EXPECT_TRUE(protocol.accepts(x, y, protocol.splice_attack(x, y)));
}

TEST(DmaGapTest, SingleGapNodeIsNotEnough) {
  // With only ONE proof-free node the checks still chain across it?
  // No: our 1-round model has no check spanning the gap either way, but a
  // single missing node leaves v_{gap-1} and v_{gap+1} unlinked only
  // through the gap; construct the protocol with the gap at the edge and
  // verify honest behavior is unaffected.
  Rng rng(8);
  const ZeroWindowDmaEq protocol(16, 8, 1);
  const Bitstring x = Bitstring::random(16, rng);
  EXPECT_TRUE(protocol.accepts(x, x, protocol.honest_proof(x)));
}

// --- fooling sets ------------------------------------------------------------

TEST(FoolingTest, EqDiagonalIsOneFooling) {
  Rng rng(9);
  const auto set = lb::eq_fooling_set(16, 50, rng);
  const auto eq = [](const Bitstring& a, const Bitstring& b) { return a == b; };
  EXPECT_TRUE(lb::is_one_fooling_set(eq, set, rng));
}

TEST(FoolingTest, GtPairsAreOneFooling) {
  Rng rng(10);
  const auto set = lb::gt_fooling_set(16, 50, rng);
  const auto gt = [](const Bitstring& a, const Bitstring& b) { return a > b; };
  EXPECT_TRUE(lb::is_one_fooling_set(gt, set, rng));
}

TEST(FoolingTest, NonFoolingSetIsRejected) {
  Rng rng(11);
  // Pairs (z, z xor 1) are NOT a fooling set for EQ (f = 0 on members).
  std::vector<lb::InputPair> bad;
  for (int i = 0; i < 10; ++i) {
    Bitstring z = Bitstring::random(8, rng);
    Bitstring w = z;
    w.flip(7);
    bad.emplace_back(z, w);
  }
  const auto eq = [](const Bitstring& a, const Bitstring& b) { return a == b; };
  EXPECT_FALSE(lb::is_one_fooling_set(eq, bad, rng));
}

// --- counting arguments ------------------------------------------------------

TEST(CountingTest, WelchBoundIsRespectedByRandomFamilies) {
  Rng rng(12);
  const int qubits = 3;           // dim 8
  const int count = 40;
  const double measured = lb::random_family_max_overlap(qubits, count, rng);
  EXPECT_GE(measured + 1e-9, lb::welch_overlap_bound(count, 1 << qubits));
}

TEST(CountingTest, TooFewQubitsForceAFoolingPair) {
  // Claim 49 in action: 200 states on 2 qubits must contain a pair with
  // overlap far above delta = 0.3.
  Rng rng(13);
  const double measured = lb::random_family_max_overlap(2, 200, rng);
  EXPECT_GT(measured, 0.9);
}

TEST(CountingTest, EnoughQubitsKeepOverlapsModest) {
  Rng rng(14);
  const double measured = lb::random_family_max_overlap(9, 40, rng);
  EXPECT_LT(measured, 0.5);
}

TEST(CountingTest, Lemma48BoundGrowsWithN) {
  EXPECT_LT(lb::lemma48_qubit_bound(16, 0.3), lb::lemma48_qubit_bound(256, 0.3));
  EXPECT_LT(lb::lemma48_qubit_bound(16, 0.3), lb::lemma48_qubit_bound(16, 0.1));
}

TEST(AccountingTest, BoundFormulas) {
  EXPECT_NEAR(lb::thm51_total_proof_bound(8, 256), 64.0, 1e-9);
  EXPECT_NEAR(lb::cor55_total_proof_bound(7), 7.0, 1e-9);
  EXPECT_GT(lb::thm56_bound(1 << 16, 0.01), lb::thm56_bound(256, 0.01));
  EXPECT_NEAR(lb::thm63_inner_product_bound(64), 8.0, 1e-9);
  EXPECT_NEAR(lb::thm63_disjointness_bound(27), 3.0, 1e-9);
  // Theorem 52's bound decays with r at fixed n.
  EXPECT_GT(lb::thm52_bound(2, 1 << 20, 0.1, 0.1),
            lb::thm52_bound(8, 1 << 20, 0.1, 0.1));
}

}  // namespace

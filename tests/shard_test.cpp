// Sharded, resumable sweep execution (sweep/shard.hpp, sweep/trajectory.hpp
// and the dqma_bench CLI glue): partition disjointness and coverage, the
// byte-identity of merged shard documents vs the monolithic run, resume
// from complete and truncated checkpoint logs, and the baseline-comparison
// gate's tolerance policy and exit codes.
//
// The end-to-end tests register three small fake experiments covering
// every recording mode (partitioned/replicated/grouped sweeps,
// serial_sweep, ad-hoc and owned records) and drive them through cli_main
// exactly as CI drives the real registry.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/registry.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"
#include "sweep/trajectory.hpp"
#include "util/json_reader.hpp"
#include "util/rng.hpp"

namespace {

using dqma::sweep::CompareOptions;
using dqma::sweep::ExperimentRecord;
using dqma::sweep::Metrics;
using dqma::sweep::ParamGrid;
using dqma::sweep::ParamPoint;
using dqma::sweep::ShardSpec;
using dqma::sweep::SinkPoint;
using dqma::sweep::SweepPolicy;
using dqma::sweep::Trajectory;
using dqma::util::Rng;

std::atomic<int> g_grid_jobs{0};

void register_fake_experiments() {
  static const bool once = [] {
    dqma::sweep::register_experiment(
        {"fake_alpha", "partitioned + replicated series",
         [](dqma::sweep::ExperimentContext& ctx) {
           // Partitioned "expensive" series: RNG-dependent metrics prove
           // seed stability across shard/resume paths.
           ParamGrid grid;
           grid.axis("x", std::vector<int>{0, 1, 2, 3, 4, 5});
           const auto points = grid.enumerate();
           const auto results = ctx.sweep(
               "grid", points, [](const ParamPoint& p, Rng& rng) {
                 g_grid_jobs.fetch_add(1, std::memory_order_relaxed);
                 return Metrics()
                     .set("value", static_cast<double>(p.get_int("x")) +
                                       rng.next_double())
                     .set("draws", static_cast<long long>(
                                       rng.next_below(1000)));
               });
           for (std::size_t i = 0; i < points.size(); ++i) {
             if (results[i].skipped) continue;
             ctx.out() << "grid " << i << "\n";
           }

           // Replicated cheap series + derived records reading across
           // points (the ratio-to-first idiom the real benches use).
           ParamGrid cheap;
           cheap.axis("n", std::vector<int>{8, 16, 32});
           const auto cheap_points = cheap.enumerate();
           const auto cheap_results = ctx.sweep(
               "cheap", cheap_points,
               [](const ParamPoint& p, Rng&) {
                 return Metrics().set("cost", 3 * p.get_int("n"));
               },
               SweepPolicy::replicate());
           const double base =
               static_cast<double>(cheap_results[0].metrics.get_int("cost"));
           for (std::size_t i = 0; i < cheap_points.size(); ++i) {
             ctx.record(
                 "cheap_ratio",
                 ParamPoint().set("n", cheap_points[i].get_int("n")),
                 Metrics().set(
                     "ratio",
                     static_cast<double>(
                         cheap_results[i].metrics.get_int("cost")) /
                         base));
           }

           // Hand-rolled serial loop sharded via owns_next_record.
           for (int i = 0; i < 4; ++i) {
             if (!ctx.owns_next_record("inline")) {
               ctx.skip_record("inline");
               continue;
             }
             Rng rng = ctx.point_rng("inline", static_cast<std::size_t>(i));
             ctx.record("inline", ParamPoint().set("i", i),
                        Metrics().set("draw", rng.next_double()));
           }
         }});

    dqma::sweep::register_experiment(
        {"fake_beta", "grouped series + reduce, serial_sweep",
         [](dqma::sweep::ExperimentContext& ctx) {
           // Grouped series: 2 configs x 3 chunks, recombined per config.
           std::vector<ParamPoint> points;
           for (int cfg = 0; cfg < 2; ++cfg) {
             for (int chunk = 0; chunk < 3; ++chunk) {
               points.push_back(
                   ParamPoint().set("cfg", cfg).set("chunk", chunk));
             }
           }
           const auto results = ctx.sweep(
               "chunks", points,
               [](const ParamPoint& p, Rng& rng) {
                 return Metrics().set(
                     "mean", 0.1 * static_cast<double>(p.get_int("cfg")) +
                                 0.01 * rng.next_double());
               },
               SweepPolicy::group_by("cfg"));
           for (int cfg = 0; cfg < 2; ++cfg) {
             const std::size_t base = static_cast<std::size_t>(3 * cfg);
             if (results[base].skipped) {
               ctx.skip_record("combined");
               continue;
             }
             double sum = 0.0;
             for (std::size_t c = 0; c < 3; ++c) {
               sum += results[base + c].metrics.get_double("mean");
             }
             ctx.record_owned("combined", ParamPoint().set("cfg", cfg),
                              Metrics().set("mean", sum / 3.0));
           }

           // serial_sweep: the heavy-point path.
           std::vector<ParamPoint> serial_points;
           serial_points.push_back(ParamPoint().set("d", 4));
           serial_points.push_back(ParamPoint().set("d", 6));
           ctx.serial_sweep("serial", serial_points,
                            [](const ParamPoint& p, Rng& rng) {
                              return Metrics().set(
                                  "v", p.get_int("d") + rng.next_double());
                            });
         }});
    return true;
  }();
  (void)once;
}

int run_cli(const std::vector<std::string>& args) {
  register_fake_experiments();
  std::vector<const char*> argv{"dqma_bench"};
  for (const std::string& arg : args) {
    argv.push_back(arg.c_str());
  }
  return dqma::sweep::cli_main(static_cast<int>(argv.size()), argv.data());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(ShardSpecTest, ParsesValidSpecs) {
  EXPECT_EQ(ShardSpec::parse("0/1"), (ShardSpec{0, 1}));
  EXPECT_EQ(ShardSpec::parse("3/4"), (ShardSpec{3, 4}));
  EXPECT_EQ(ShardSpec::parse("3/4").label(), "3/4");
  EXPECT_FALSE(ShardSpec::parse("0/1").active());
  EXPECT_TRUE(ShardSpec::parse("0/2").active());
}

TEST(ShardSpecTest, RejectsInvalidSpecs) {
  for (const char* bad :
       {"", "2", "4/4", "-1/2", "a/b", "1/0", "1/-3", "1/2/3", "1/2 "}) {
    EXPECT_THROW(ShardSpec::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(ShardSpecTest, ShardsPartitionTheKeySpace) {
  // Every key belongs to exactly one of the N shards: disjoint, and the
  // union is the full set.
  for (int count : {1, 2, 4, 7}) {
    for (std::uint64_t key = 0; key < 500; ++key) {
      int owners = 0;
      for (int index = 0; index < count; ++index) {
        owners += ShardSpec{index, count}.contains(key) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1) << "key " << key << " count " << count;
    }
  }
}

TEST(ShardEndToEndTest, ShardsAreDisjointAndMergeByteIdentical) {
  const std::string full = temp_path("e2e_full.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--json", full}), 0);

  // Shard runs execute a strict subset of the partitioned jobs, and each
  // partitioned job runs in exactly one shard.
  std::vector<std::string> shard_files;
  g_grid_jobs.store(0);
  for (int i = 0; i < 3; ++i) {
    const std::string path =
        temp_path("e2e_shard" + std::to_string(i) + ".json");
    shard_files.push_back(path);
    ASSERT_EQ(run_cli({"--threads", "2", "--shard",
                       std::to_string(i) + "/3", "--json", path}),
              0);
  }
  EXPECT_EQ(g_grid_jobs.load(), 6)
      << "each partitioned job must execute in exactly one of the shards";

  // Orders recorded across shards are disjoint per experiment.
  std::set<std::pair<std::string, std::size_t>> seen;
  std::size_t total_points = 0;
  for (const std::string& path : shard_files) {
    const Trajectory shard = Trajectory::load(path);
    EXPECT_TRUE(shard.shard.active());
    for (const ExperimentRecord& experiment : shard.experiments) {
      for (const SinkPoint& point : experiment.points) {
        EXPECT_TRUE(seen.insert({experiment.name, point.order}).second)
            << experiment.name << " order " << point.order
            << " recorded by two shards";
        ++total_points;
      }
    }
  }
  const Trajectory complete = Trajectory::load(full);
  std::size_t expected_points = 0;
  for (const ExperimentRecord& experiment : complete.experiments) {
    expected_points += experiment.points.size();
  }
  EXPECT_EQ(total_points, expected_points)
      << "the union of the shards must be the full point set";

  // The reassembled document is byte-identical to the monolithic run.
  const std::string merged = temp_path("e2e_merged.json");
  std::vector<std::string> merge_args{"--merge"};
  merge_args.insert(merge_args.end(), shard_files.begin(),
                    shard_files.end());
  merge_args.insert(merge_args.end(), {"--json", merged});
  ASSERT_EQ(run_cli(merge_args), 0);
  EXPECT_EQ(read_file(merged), read_file(full));
}

TEST(ShardEndToEndTest, ResumeReproducesBytesAndSkipsFinishedPoints) {
  const std::string full = temp_path("resume_full.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--json", full}), 0);

  // A fresh run with a checkpoint log produces the same bytes and leaves
  // a replayable log behind.
  const std::string log = temp_path("resume_log.jsonl");
  std::remove(log.c_str());
  const std::string first = temp_path("resume_first.json");
  ASSERT_EQ(
      run_cli({"--threads", "2", "--resume", log, "--json", first}), 0);
  EXPECT_EQ(read_file(first), read_file(full));

  // Truncate the log mid-stream, with a torn final line (the crash
  // shape): the resumed run must still reproduce the bytes.
  const std::string log_text = read_file(log);
  std::vector<std::string> lines;
  std::istringstream stream(log_text);
  for (std::string line; std::getline(stream, line);) {
    lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 4u);
  const std::string truncated = temp_path("resume_trunc.jsonl");
  {
    std::ofstream out(truncated, std::ios::binary);
    for (std::size_t i = 0; i < 4; ++i) {
      out << lines[i] << "\n";
    }
    out << R"({"experiment":"fake_al)";  // torn mid-write
  }
  const std::string second = temp_path("resume_second.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--resume", truncated, "--json",
                     second}),
            0);
  EXPECT_EQ(read_file(second), read_file(full));

  // The torn fragment must have been truncated before appending, so a
  // SECOND crash/resume cycle on the same log still works: tear the log
  // again and resume again.
  {
    std::ofstream out(truncated, std::ios::binary | std::ios::app);
    out << R"({"experiment":"torn_again)";
  }
  const std::string again = temp_path("resume_again.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--resume", truncated, "--json",
                     again}),
            0);
  EXPECT_EQ(read_file(again), read_file(full));

  // Resuming from the complete log re-executes no sweep job at all.
  g_grid_jobs.store(0);
  const std::string third = temp_path("resume_third.json");
  ASSERT_EQ(
      run_cli({"--threads", "2", "--resume", log, "--json", third}), 0);
  EXPECT_EQ(read_file(third), read_file(full));
  EXPECT_EQ(g_grid_jobs.load(), 0);

  // A log from a different configuration is refused.
  EXPECT_EQ(run_cli({"--threads", "2", "--seed", "9", "--resume", log}), 1);
}

TEST(ShardEndToEndTest, ShardedResumeComposes) {
  const std::string full = temp_path("shres_full.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--json", full}), 0);
  const std::string log = temp_path("shres_log.jsonl");
  std::remove(log.c_str());
  const std::string a = temp_path("shres_a.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--shard", "1/2", "--resume", log,
                     "--json", a}),
            0);
  // Re-run the same shard from its log, then merge with the other shard.
  const std::string b = temp_path("shres_b.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--shard", "1/2", "--resume", log,
                     "--json", b}),
            0);
  EXPECT_EQ(read_file(a), read_file(b));
  const std::string other = temp_path("shres_other.json");
  ASSERT_EQ(
      run_cli({"--threads", "2", "--shard", "0/2", "--json", other}), 0);
  const std::string merged = temp_path("shres_merged.json");
  ASSERT_EQ(run_cli({"--merge", other, b, "--json", merged}), 0);
  EXPECT_EQ(read_file(merged), read_file(full));
}

TEST(ShardEndToEndTest, CompareGateDetectsPerturbations) {
  const std::string full = temp_path("cmp_full.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--json", full}), 0);

  // Self-comparison passes, both for a run and through --merge.
  EXPECT_EQ(run_cli({"--threads", "2", "--compare", full}), 0);
  EXPECT_EQ(run_cli({"--merge", full, "--compare", full}), 0);

  // An injected metric perturbation fails the gate.
  std::string perturbed_text = read_file(full);
  const std::string needle = "\"cost\": 24";
  const std::size_t at = perturbed_text.find(needle);
  ASSERT_NE(at, std::string::npos);
  perturbed_text.replace(at, needle.size(), "\"cost\": 25");
  const std::string perturbed = temp_path("cmp_perturbed.json");
  {
    std::ofstream out(perturbed, std::ios::binary);
    out << perturbed_text;
  }
  EXPECT_EQ(run_cli({"--merge", full, "--compare", perturbed}), 1);

  // A different seed is a different workload: the gate refuses outright.
  const std::string other_seed = temp_path("cmp_seed1.json");
  ASSERT_EQ(
      run_cli({"--threads", "2", "--seed", "1", "--json", other_seed}), 0);
  EXPECT_EQ(run_cli({"--merge", other_seed, "--compare", full}), 1);
}

TEST(ShardEndToEndTest, FailsFastOnBadOutputPath) {
  g_grid_jobs.store(0);
  EXPECT_EQ(run_cli({"--json", "/nonexistent_dir_for_sure/out.json"}), 2);
  EXPECT_EQ(run_cli({"--resume", "/nonexistent_dir_for_sure/log.jsonl"}), 2);
  EXPECT_EQ(run_cli({"--compare", "/nonexistent_dir_for_sure/base.json"}),
            2);
  EXPECT_EQ(run_cli({"--shard", "5/4"}), 2);
  EXPECT_EQ(run_cli({"--merge", "--json", temp_path("never.json")}), 2);
  EXPECT_EQ(run_cli({"--shard", "0/2", "--compare", "whatever.json"}), 2);
  EXPECT_EQ(g_grid_jobs.load(), 0)
      << "validation failures must not start any experiment work";
}

TEST(CheckpointLogTest, FsyncsByDefaultWithEnvOptOut) {
  using dqma::sweep::CheckpointLog;
  using dqma::sweep::JobResult;

  const auto make_log = [](const std::string& name) {
    const std::string path = temp_path(name);
    std::remove(path.c_str());
    return std::make_unique<CheckpointLog>(path, /*base_seed=*/7,
                                           /*smoke=*/true, ShardSpec{});
  };

#if defined(__unix__) || defined(__APPLE__)
  // Regression: append() used to only flush, so a committed line could die
  // with the host. The default now fsyncs every append...
  {
    const auto log = make_log("fsync_default.jsonl");
    EXPECT_TRUE(log->syncing());
    // The containing directory is fsynced at open too: a crash right after
    // creation cannot lose the log file's very existence.
    EXPECT_TRUE(log->directory_synced());
  }
  // ...and DQMA_CHECKPOINT_FSYNC=0 restores flush-only appends for
  // throughput (0 / "off" / "false"; anything else keeps the default).
  ::setenv("DQMA_CHECKPOINT_FSYNC", "0", 1);
  {
    const auto log = make_log("fsync_off.jsonl");
    EXPECT_FALSE(log->syncing());
    EXPECT_FALSE(log->directory_synced());
  }
  ::setenv("DQMA_CHECKPOINT_FSYNC", "1", 1);
  {
    const auto log = make_log("fsync_on.jsonl");
    EXPECT_TRUE(log->syncing());
    EXPECT_TRUE(log->directory_synced());
  }
  ::unsetenv("DQMA_CHECKPOINT_FSYNC");
#endif

  // Entries appended in either mode are committed and reload identically.
  const std::string path = temp_path("fsync_reload.jsonl");
  std::remove(path.c_str());
  {
    CheckpointLog log(path, 7, true, ShardSpec{});
    JobResult result;
    result.metrics.set("value", 0.5);
    log.append("exp", "series", /*order=*/0, /*key=*/42,
               ParamPoint().set("x", 1), result);
  }
  CheckpointLog reloaded(path, 7, true, ShardSpec{});
  ASSERT_EQ(reloaded.loaded_entries(), 1u);
  const CheckpointLog::Entry* entry = reloaded.find("exp", 0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->key, 42u);
  EXPECT_EQ(entry->metrics.get_double("value"), 0.5);
}

TEST(TrajectoryTest, NonFiniteMetricsRoundTripThroughWriterAndReader) {
  // The writer emits null for inf/nan (json.cpp: RFC 8259 has no non-finite
  // literals); the reader maps null back to NaN; the comparison gate treats
  // NaN == NaN as equivalent. This pins the full cycle: the FIRST
  // serialization collapses every non-finite to null, and from then on the
  // round trip is exact — resumed/merged/compared documents never drift.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

  Trajectory original;
  original.base_seed = 3;
  ExperimentRecord record;
  record.name = "exp";
  record.description = "non-finite metrics";
  SinkPoint point;
  point.params.set("n", 1);
  point.metrics.set("nan_metric", kNaN)
      .set("pos_inf", kInf)
      .set("neg_inf", -kInf)
      .set("finite", 0.25);
  record.points.push_back(point);
  original.experiments.push_back(record);

  const std::string bytes = original.to_json().dump_compact();
  // All three non-finites serialize as null; the finite value survives.
  EXPECT_NE(bytes.find("\"nan_metric\":null"), std::string::npos) << bytes;
  EXPECT_NE(bytes.find("\"pos_inf\":null"), std::string::npos);
  EXPECT_NE(bytes.find("\"neg_inf\":null"), std::string::npos);
  EXPECT_NE(bytes.find("\"finite\":0.25"), std::string::npos);

  const Trajectory parsed =
      Trajectory::from_json(dqma::util::json::parse(bytes));
  const auto& metrics = parsed.experiments.at(0).points.at(0).metrics;
  EXPECT_TRUE(std::isnan(metrics.get_double("nan_metric")));
  EXPECT_TRUE(std::isnan(metrics.get_double("pos_inf")));
  EXPECT_EQ(metrics.get_double("finite"), 0.25);

  std::ostringstream diag;
  // NaN round-trips losslessly; the infinities collapsed to NaN, so
  // comparing the in-memory original against its round trip flags exactly
  // the two inf metrics and nothing else.
  EXPECT_EQ(compare_trajectories(original, parsed, CompareOptions{}, diag),
            2u)
      << diag.str();

  // After the first pass the cycle is a fixed point: bytes are stable and
  // the comparison gate reports zero differences.
  const std::string bytes_again = parsed.to_json().dump_compact();
  EXPECT_EQ(bytes, bytes_again);
  const Trajectory reparsed =
      Trajectory::from_json(dqma::util::json::parse(bytes_again));
  EXPECT_EQ(compare_trajectories(parsed, reparsed, CompareOptions{}, diag),
            0u)
      << diag.str();
}

TEST(CompareTrajectoriesTest, TolerancePolicyPerMetricType) {
  const auto make = [](double floating, long long counter) {
    Trajectory t;
    ExperimentRecord record;
    record.name = "exp";
    record.description = "d";
    SinkPoint point;
    point.params.set("n", 1);
    point.metrics.set("floating", floating).set("counter", counter);
    record.points.push_back(point);
    t.experiments.push_back(record);
    return t;
  };

  std::ostringstream diag;
  // Within relative tolerance: equivalent.
  EXPECT_EQ(compare_trajectories(make(1.0, 5), make(1.0 + 1e-12, 5),
                                 CompareOptions{}, diag),
            0u);
  // Beyond it: flagged.
  EXPECT_EQ(compare_trajectories(make(1.0, 5), make(1.0 + 1e-6, 5),
                                 CompareOptions{}, diag),
            1u);
  // Integer metrics are exact, however small the drift.
  EXPECT_EQ(compare_trajectories(make(1.0, 5), make(1.0, 6),
                                 CompareOptions{}, diag),
            1u);
  // A custom tolerance loosens the floating policy only.
  CompareOptions loose;
  loose.tolerance = 1e-3;
  EXPECT_EQ(compare_trajectories(make(1.0, 5), make(1.0 + 1e-6, 5), loose,
                                 diag),
            0u);
}

TEST(TrajectoryTest, RejectsMalformedDocuments) {
  using dqma::util::json::parse;
  EXPECT_THROW(Trajectory::from_json(parse("[]")), std::invalid_argument);
  EXPECT_THROW(Trajectory::from_json(parse("{\"schema_version\": 2}")),
               std::invalid_argument);
  EXPECT_THROW(
      Trajectory::from_json(parse("{\"schema_version\": 1, \"config\": "
                                  "{\"smoke\": true}}")),
      std::invalid_argument);
  EXPECT_THROW(Trajectory::load(temp_path("does_not_exist.json")),
               std::invalid_argument);
}

TEST(TrajectoryTest, MergeRejectsDuplicateAndMissingShards) {
  const std::string s0 = temp_path("mt_s0.json");
  const std::string s1 = temp_path("mt_s1.json");
  ASSERT_EQ(run_cli({"--threads", "2", "--shard", "0/2", "--json", s0}), 0);
  ASSERT_EQ(run_cli({"--threads", "2", "--shard", "1/2", "--json", s1}), 0);

  std::vector<Trajectory> duplicate;
  duplicate.push_back(Trajectory::load(s0));
  duplicate.push_back(Trajectory::load(s0));
  duplicate.push_back(Trajectory::load(s1));
  EXPECT_THROW(merge_trajectories(std::move(duplicate)),
               std::invalid_argument);

  std::vector<Trajectory> missing;
  missing.push_back(Trajectory::load(s0));
  EXPECT_THROW(merge_trajectories(std::move(missing)),
               std::invalid_argument);
}

}  // namespace

// Deterministic-seed guarantees of the RNG layer (DESIGN.md Sec. 5): the
// same seed must yield bit-identical streams within a run, across
// translation units, and through the quantum sampling layer. When a test
// elsewhere flakes, these suites establish whether the RNG can be blamed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "dqma/exact_runner.hpp"
#include "linalg/eigen.hpp"
#include "quantum/density.hpp"
#include "quantum/local_ops.hpp"
#include "quantum/partial_trace.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "sweep/parallel.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::util::Rng;

TEST(RngDeterminismTest, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at draw " << i;
  }
}

TEST(RngDeterminismTest, SameSeedSameStreamAcrossTranslationUnits) {
  // The reference stream is generated inside the support library's
  // translation unit; an inline-initialization or ODR bug in the seeding
  // path would show up as a mismatch here.
  const auto reference = dqma::test::reference_stream(0xfeedface, 256);
  Rng local(0xfeedface);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(local.next_u64(), reference[i]) << "diverged at draw " << i;
  }
}

TEST(RngDeterminismTest, DistinctSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngDeterminismTest, DerivedDrawsAreDeterministic) {
  // All derived draw types consume the base stream deterministically.
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.next_below(97), b.next_below(97));
    ASSERT_EQ(a.next_int(-50, 50), b.next_int(-50, 50));
    ASSERT_EQ(a.next_double(), b.next_double());
    ASSERT_EQ(a.next_bool(0.3), b.next_bool(0.3));
    ASSERT_EQ(a.next_gaussian(), b.next_gaussian());
  }
}

TEST(RngDeterminismTest, SplitIsDeterministicAndIndependent) {
  Rng a(999);
  Rng b(999);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64());
  }
  // Parent and child streams do not collide on a short window.
  std::set<std::uint64_t> parent_draws;
  for (int i = 0; i < 64; ++i) parent_draws.insert(a.next_u64());
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(parent_draws.count(child_a.next_u64()));
  }
}

TEST(QuantumRandomDeterminismTest, HaarStateSameSeedIdentical) {
  Rng a(424242);
  Rng b(424242);
  const CVec s1 = dqma::quantum::haar_state(16, a);
  const CVec s2 = dqma::quantum::haar_state(16, b);
  EXPECT_STATE_NEAR_TOL(s1, s2, 0.0);
}

TEST(QuantumRandomDeterminismTest, HaarStateMatchesCrossTuReference) {
  Rng local(0xabcdef);
  const CVec here = dqma::quantum::haar_state(8, local);
  const CVec there = dqma::test::reference_haar_state(8, 0xabcdef);
  EXPECT_STATE_NEAR_TOL(here, there, 0.0);
}

TEST(QuantumRandomDeterminismTest, HaarUnitaryAndDensitySameSeedIdentical) {
  Rng a(7);
  Rng b(7);
  const CMat u1 = dqma::quantum::haar_unitary(8, a);
  const CMat u2 = dqma::quantum::haar_unitary(8, b);
  EXPECT_DENSITY_NEAR_TOL(u1, u2, 0.0);
  const CMat d1 = dqma::quantum::random_density(8, a);
  const CMat d2 = dqma::quantum::random_density(8, b);
  EXPECT_DENSITY_NEAR_TOL(d1, d2, 0.0);
}

TEST(QuantumRandomDeterminismTest, HaarStateIsNormalized) {
  Rng rng(3);
  for (int dim : {2, 3, 8, 32}) {
    EXPECT_NORMALIZED(dqma::quantum::haar_state(dim, rng));
  }
}

// ---------------------------------------------------------------------------
// derive_seed: the per-job seed derivation of the parallel sweep engine.
// The values below are pinned against hand-derived SplitMix64 algebra (see
// rng.hpp for the definition); if derive_seed ever changes, every recorded
// benchmark trajectory silently reshuffles, so these must fail loudly.
// ---------------------------------------------------------------------------

TEST(DeriveSeedTest, MatchesHandComputedValues) {
  using dqma::util::derive_seed;
  // base 0, job 0: state = phi64 = 0x9e3779b97f4a7c15. One mix round gives
  // 0xe220a8397b1dcdaf (the canonical first SplitMix64 output for seed 0,
  // cross-checking the scrambler); the second round gives the result.
  EXPECT_EQ(derive_seed(0, 0), 0x48218226ff3cd4bfULL);
  // base 0, job 1: state = 2 * phi64 (mod 2^64) = 0x3c6ef372fe94f82a.
  EXPECT_EQ(derive_seed(0, 1), 0xcd73fe3de975ac26ULL);
  // base 0, job 2: state = 3 * phi64 (mod 2^64) = 0xdaa66d2c7ddf743f.
  EXPECT_EQ(derive_seed(0, 2), 0x7b476c5a5333d0ecULL);
  // base 1 shifts the state by exactly 1: state = phi64 + 1.
  EXPECT_EQ(derive_seed(1, 0), 0xdce423fc82c0d5b8ULL);
  // A composite case: base 0xdeadbeef, job 7 (state = base + 8 * phi64).
  EXPECT_EQ(derive_seed(0xdeadbeefULL, 7), 0xa60a721486aa7f53ULL);
  // Wrap-around cases: base 2^64 - 1 (state = phi64 - 1) and job index
  // 2^64 - 1 ((idx + 1) * phi64 wraps to 0, so state = base).
  EXPECT_EQ(derive_seed(0xffffffffffffffffULL, 0), 0x445018e305810b78ULL);
  EXPECT_EQ(derive_seed(42, 0xffffffffffffffffULL), 0x97ea87f7e45c00a5ULL);
}

TEST(DeriveSeedTest, PinsBenchSeriesSeedsOfTheLocalOpsEngine) {
  // Series seeds of the benchmark series introduced with the matrix-free
  // local-operator engine, at the default global seed 0. The registry
  // derives experiment seed = derive_seed(global, fnv1a64(experiment)) and
  // series seed = derive_seed(experiment_seed, fnv1a64(series)); pinning
  // the values here means a silent change to either hash or derivation
  // shows up as a test failure, not as a reshuffled BENCH_*.json trajectory.
  using dqma::sweep::fnv1a64;
  using dqma::util::derive_seed;
  const auto series_seed = [](const char* experiment, const char* series) {
    return derive_seed(derive_seed(0, fnv1a64(experiment)), fnv1a64(series));
  };
  EXPECT_EQ(series_seed("table3_lower", "matrix_free_large"),
            0xb886ab87dd07ad15ULL);
  EXPECT_EQ(series_seed("table2_eq", "exact_vs_dp_large"),
            0x5a7301dc55a800f9ULL);
  EXPECT_EQ(series_seed("micro", "kernels"), 0xafb5b4cbbdebde25ULL);
  // First job of each series (what the sweep engine hands the job body).
  EXPECT_EQ(derive_seed(series_seed("table3_lower", "matrix_free_large"), 0),
            0xed7d97ba7b1b3da0ULL);
  EXPECT_EQ(derive_seed(series_seed("table2_eq", "exact_vs_dp_large"), 0),
            0xa21b20d93fb2ce37ULL);
  EXPECT_EQ(derive_seed(series_seed("micro", "kernels"), 0),
            0xefa6ecdc8611b80dULL);
}

TEST(DeriveSeedTest, PinsBenchSeriesSeedsOfTheParallelKernelLayer) {
  // Series introduced with the deterministic intra-instance parallelism PR,
  // pinned for the same reason as the local-ops series above.
  using dqma::sweep::fnv1a64;
  using dqma::util::derive_seed;
  const auto series_seed = [](const char* experiment, const char* series) {
    return derive_seed(derive_seed(0, fnv1a64(experiment)), fnv1a64(series));
  };
  EXPECT_EQ(series_seed("micro", "parallel_kernels"), 0x2331d1ea91f7cda9ULL);
  EXPECT_EQ(series_seed("table2_eq", "circuit_mc"), 0x84204262021e6c11ULL);
  EXPECT_EQ(derive_seed(series_seed("micro", "parallel_kernels"), 0),
            0x4578d9d0a2be2a8aULL);
  EXPECT_EQ(derive_seed(series_seed("table2_eq", "circuit_mc"), 0),
            0x8b68f72be803c4ffULL);
}

TEST(DeriveSeedTest, PinsBenchSeriesSeedsOfTheScenarioEngine) {
  // Series introduced with the scenario engine (exp_topology), pinned for
  // the same reason as the series above: the taxonomy counts are exact
  // integers, so a reshuffled seed stream changes the recorded baseline
  // rather than merely perturbing a float.
  using dqma::sweep::fnv1a64;
  using dqma::util::derive_seed;
  const auto series_seed = [](const char* experiment, const char* series) {
    return derive_seed(derive_seed(0, fnv1a64(experiment)), fnv1a64(series));
  };
  EXPECT_EQ(series_seed("exp_topology", "taxonomy"), 0x960926ad5a0d97c4ULL);
  EXPECT_EQ(series_seed("exp_topology", "gap_vs_reps"),
            0xb4ec2bfce3435957ULL);
  EXPECT_EQ(derive_seed(series_seed("exp_topology", "taxonomy"), 0),
            0xc59170b698b93c8fULL);
  EXPECT_EQ(derive_seed(series_seed("exp_topology", "gap_vs_reps"), 0),
            0xc8c8ccb6346585bcULL);
}

// ---------------------------------------------------------------------------
// Kernel thread-count invariance: every kernel threaded onto
// sweep::parallel_for / parallel_reduce must produce byte-identical results
// at any kernel thread count (fixed chunk partitioning, chunk-ordered
// reductions). Each pin runs the same computation under kernel pools of
// size 1, 3 and 8 and requires exact equality — not a tolerance.
// ---------------------------------------------------------------------------

using dqma::quantum::LocalOpPlan;
using dqma::quantum::RegisterShape;

/// Runs `compute` under kernel thread counts 1, 3 and 8 and requires the
/// returned matrices to match byte for byte (linf distance exactly 0).
void expect_threads_invariant_mat(
    const std::function<CMat()>& compute) {
  const auto at = [&](int threads) {
    const dqma::sweep::KernelThreadScope scope(threads);
    return compute();
  };
  const CMat serial = at(1);
  EXPECT_EQ(serial.linf_distance(at(3)), 0.0);
  EXPECT_EQ(serial.linf_distance(at(8)), 0.0);
}

void expect_threads_invariant_vec(
    const std::function<CVec()>& compute) {
  const auto at = [&](int threads) {
    const dqma::sweep::KernelThreadScope scope(threads);
    return compute();
  };
  const CVec serial = at(1);
  EXPECT_EQ(serial.linf_distance(at(3)), 0.0);
  EXPECT_EQ(serial.linf_distance(at(8)), 0.0);
}

void expect_threads_invariant_scalar(
    const std::function<double()>& compute) {
  const auto at = [&](int threads) {
    const dqma::sweep::KernelThreadScope scope(threads);
    return compute();
  };
  const double serial = at(1);
  EXPECT_EQ(serial, at(3));
  EXPECT_EQ(serial, at(8));
}

TEST(ThreadedKernelDeterminismTest, ApplyLocalStateVector) {
  // Large enough that the region actually splits into many chunks.
  const RegisterShape shape(std::vector<int>(7, 4));  // D = 16384
  Rng rng(11);
  const CMat u = dqma::quantum::haar_unitary(16, rng);
  const CVec psi0 = dqma::quantum::haar_state(16384, rng);
  const LocalOpPlan plan(shape, {1, 5});
  expect_threads_invariant_vec([&] {
    CVec psi = psi0;
    dqma::quantum::apply_local(plan, u, psi);
    return psi;
  });
}

TEST(ThreadedKernelDeterminismTest, ExpectationLocalPureAndDensity) {
  const RegisterShape shape({8, 4, 8});  // D = 256
  Rng rng(12);
  const CMat effect = dqma::quantum::random_density(4, rng);
  const CVec psi = dqma::quantum::haar_state(256, rng);
  const CMat rho = dqma::quantum::random_density(256, rng);
  const LocalOpPlan plan(shape, {1});
  expect_threads_invariant_scalar(
      [&] { return dqma::quantum::expectation_local(plan, effect, psi); });
  expect_threads_invariant_scalar(
      [&] { return dqma::quantum::expectation_local(plan, effect, rho); });
}

TEST(ThreadedKernelDeterminismTest, SandwichAndProjectLocal) {
  const RegisterShape shape({16, 4, 4});  // D = 256
  Rng rng(13);
  const CMat u = dqma::quantum::haar_unitary(4, rng);
  const CMat rho0 = dqma::quantum::random_density(256, rng);
  const LocalOpPlan plan(shape, {1});
  expect_threads_invariant_mat([&] {
    CMat rho = rho0;
    dqma::quantum::sandwich_local(plan, u, rho);
    return rho;
  });
  CMat e(4, 4);  // rank-deficient effect so project_local renormalizes
  e(0, 0) = Complex{1.0, 0.0};
  e(1, 1) = Complex{0.5, 0.0};
  expect_threads_invariant_mat([&] {
    CMat rho = rho0;
    dqma::quantum::project_local(plan, e, rho);
    return rho;
  });
}

TEST(ThreadedKernelDeterminismTest, BlockedGemmAndAdjointProducts) {
  Rng rng(14);
  const CMat a = dqma::quantum::haar_unitary(96, rng);
  const CMat b = dqma::quantum::haar_unitary(96, rng);
  expect_threads_invariant_mat([&] { return a * b; });
  expect_threads_invariant_mat([&] { return a.adjoint_times(b); });
  expect_threads_invariant_mat([&] { return a.times_adjoint(b); });
  const CVec v = dqma::quantum::haar_state(96, rng);
  expect_threads_invariant_vec([&] { return a * v; });
}

TEST(ThreadedKernelDeterminismTest, PartialTracePasses) {
  Rng rng(15);
  const RegisterShape shape({4, 8, 8});
  const dqma::quantum::Density rho(
      shape, dqma::quantum::random_density(256, rng));
  expect_threads_invariant_mat([&] {
    return dqma::quantum::partial_trace(rho, {1}).matrix();
  });
}

TEST(ThreadedKernelDeterminismTest, AnalyzerAssemblyAndMatrixFreeMatvec) {
  using dqma::protocol::ExactEqPathAnalyzer;
  Rng rng(16);
  const CVec hx = CVec::basis(3, 0);
  CVec hy(3);
  hy[0] = Complex{0.2, 0.0};
  hy[1] = Complex{std::sqrt(1.0 - 0.04), 0.0};
  const CVec probe = dqma::quantum::haar_state(729, rng);  // 3^6, r = 4
  // Dense streaming assembly (the apply_left_local pass inside).
  expect_threads_invariant_mat([&] {
    const ExactEqPathAnalyzer dense(hx, hy, 4, ExactEqPathAnalyzer::Mode::kDense);
    return dense.acceptance_operator();
  });
  // Matrix-free action and the power iteration on it.
  expect_threads_invariant_vec([&] {
    const ExactEqPathAnalyzer mf(hx, hy, 4,
                                 ExactEqPathAnalyzer::Mode::kMatrixFree);
    return mf.apply_acceptance(probe);
  });
  expect_threads_invariant_scalar([&] {
    const ExactEqPathAnalyzer mf(hx, hy, 4,
                                 ExactEqPathAnalyzer::Mode::kMatrixFree);
    return mf.worst_case_accept(/*max_iters=*/32);
  });
}

TEST(ThreadedKernelDeterminismTest, IsAlsoInvariantInsideSweepJobs) {
  // A kernel inside a sweep job runs serially (nesting contract) — its
  // result must equal the kernel-parallel result from outside a job.
  Rng rng(17);
  const CMat a = dqma::quantum::haar_unitary(64, rng);
  const CMat b = dqma::quantum::haar_unitary(64, rng);
  CMat outside;
  {
    const dqma::sweep::KernelThreadScope scope(8);
    outside = a * b;
  }
  dqma::sweep::ThreadPool pool(4);
  std::vector<CMat> inside(4);
  pool.run_indexed(4, [&](std::size_t i) { inside[i] = a * b; });
  for (const CMat& m : inside) {
    EXPECT_EQ(outside.linf_distance(m), 0.0);
  }
}

TEST(DeriveSeedTest, IsAPureFunction) {
  using dqma::util::derive_seed;
  for (std::uint64_t base : {0ULL, 19ULL, 0x0ddba11ULL}) {
    for (std::uint64_t job = 0; job < 64; ++job) {
      ASSERT_EQ(derive_seed(base, job), derive_seed(base, job));
    }
  }
}

TEST(DeriveSeedTest, NeighbouringJobsGetDecorrelatedSeeds) {
  using dqma::util::derive_seed;
  // No collisions across a window of consecutive jobs and nearby bases,
  // and derived streams diverge immediately.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ULL, 1ULL, 2ULL}) {
    for (std::uint64_t job = 0; job < 256; ++job) {
      seeds.insert(derive_seed(base, job));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 256u);
  Rng a(derive_seed(0, 0));
  Rng b(derive_seed(0, 1));
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace

// The parallel sweep engine (src/sweep/): thread-pool lifecycle and
// correctness, grid enumeration, and the determinism guarantee the whole
// subsystem exists for — identical results (and identical JSON bytes) at
// any thread count on a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/json.hpp"
#include "sweep/parallel.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"
#include "util/rng.hpp"

namespace {

using dqma::sweep::Json;
using dqma::sweep::JobResult;
using dqma::sweep::Metrics;
using dqma::sweep::ParamGrid;
using dqma::sweep::ParamPoint;
using dqma::sweep::ResultSink;
using dqma::sweep::run_sweep;
using dqma::sweep::ThreadPool;
using dqma::util::Rng;

TEST(ThreadPoolTest, ConstructsAndShutsDownWithoutWork) {
  // Idle pools must join cleanly — including pools torn down immediately
  // and pools created repeatedly (worker threads park on the batch
  // condvar and must all observe the stop flag).
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
  }
}

TEST(ThreadPoolTest, ZeroJobsIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.run_indexed(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, RunsEveryJobExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kJobs = 5000;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.run_indexed(kJobs, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(ThreadPoolTest, SurvivesManyConsecutiveBatches) {
  ThreadPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<int> sum{0};
    pool.run_indexed(17, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPoolTest, PropagatesJobExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_indexed(64,
                       [](std::size_t i) {
                         if (i == 13) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The failed batch must not wedge the pool.
  std::atomic<int> ok{0};
  pool.run_indexed(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolTest, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<std::size_t> order;
  pool.run_indexed(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ReentrantRunIndexedRunsInlineInsteadOfDeadlocking) {
  // Regression: a job calling run_indexed on its own pool used to publish
  // a nested batch into the already-claimed batch state and deadlock
  // waiting for workers that were all busy inside the outer batch. The
  // nesting contract now matches parallel_for: nested regions run
  // serially inline on the calling thread.
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 8;
  std::vector<std::atomic<int>> inner_hits(kOuter * kInner);
  pool.run_indexed(kOuter, [&](std::size_t outer) {
    pool.run_indexed(kInner, [&](std::size_t inner) {
      EXPECT_TRUE(ThreadPool::executing_batch());
      inner_hits[outer * kInner + inner].fetch_add(
          1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < inner_hits.size(); ++i) {
    ASSERT_EQ(inner_hits[i].load(), 1) << "inner job " << i;
  }
  // The pool must stay usable after reentrant batches.
  std::atomic<int> ok{0};
  pool.run_indexed(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPoolTest, ReentrantCallAcrossPoolsRunsInline) {
  // The guard is per-thread, not per-pool: a job of pool A dispatching on
  // pool B would park A's worker inside B's batch — B's jobs could in turn
  // hold A's state, so any cross-pool dispatch from inside a batch runs
  // inline too.
  ThreadPool outer(3);
  ThreadPool inner(3);
  std::atomic<int> nested{0};
  outer.run_indexed(9, [&](std::size_t) {
    inner.run_indexed(5, [&](std::size_t) {
      nested.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(nested.load(), 9 * 5);
}

TEST(ThreadPoolTest, ReentrantExceptionsFollowTheBatchContract) {
  // Nested inline batches keep run_indexed's failure semantics: every job
  // runs, the first exception is rethrown after the nested batch drains.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_indexed(1,
                       [&](std::size_t) {
                         pool.run_indexed(6, [&](std::size_t i) {
                           ran.fetch_add(1, std::memory_order_relaxed);
                           if (i == 2) {
                             throw std::runtime_error("nested boom");
                           }
                         });
                       }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 6);
}

TEST(ParallelForTest, ChunkBoundariesDependOnlyOnProblemSize) {
  using dqma::sweep::plan_chunks;
  // The determinism contract: the partition is a pure function of
  // (count, grain) — probing it under different kernel-pool sizes must not
  // change it (it takes no thread-count input at all, by construction).
  const auto plan = plan_chunks(1000, 1);
  EXPECT_EQ(plan.chunk_size, 16u);  // ceil(1000 / 64)
  EXPECT_EQ(plan.chunks, 63u);
  const auto coarse = plan_chunks(1000, 300);
  EXPECT_EQ(coarse.chunk_size, 300u);  // grain dominates the 64-chunk cap
  EXPECT_EQ(coarse.chunks, 4u);
  EXPECT_EQ(plan_chunks(0, 8).chunks, 0u);
  EXPECT_EQ(plan_chunks(5, 100).chunks, 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const dqma::sweep::KernelThreadScope scope(8);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  dqma::sweep::parallel_for(kCount, 1,
                            [&](std::size_t begin, std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                hits[i].fetch_add(1,
                                                  std::memory_order_relaxed);
                              }
                            });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, PropagatesChunkExceptions) {
  const dqma::sweep::KernelThreadScope scope(4);
  EXPECT_THROW(dqma::sweep::parallel_for(
                   256, 1,
                   [](std::size_t begin, std::size_t) {
                     if (begin >= 128) {
                       throw std::runtime_error("chunk failure");
                     }
                   }),
               std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> ok{0};
  dqma::sweep::parallel_for(64, 1, [&](std::size_t begin, std::size_t end) {
    ok.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ok.load(), 64);
}

TEST(ParallelForTest, NestedRegionsRunSeriallyWithoutDeadlock) {
  const dqma::sweep::KernelThreadScope scope(4);
  std::atomic<int> inner_total{0};
  dqma::sweep::parallel_for(8, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Nested region: must execute inline (the calling thread is inside a
      // batch) and still cover its whole range.
      dqma::sweep::parallel_for(
          10, 1, [&](std::size_t b, std::size_t e) {
            inner_total.fetch_add(static_cast<int>(e - b),
                                  std::memory_order_relaxed);
          });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ParallelForTest, InsideSweepJobRunsSeriallyWithoutDeadlock) {
  // Kernels called from sweep jobs must fall back to inline execution —
  // same results, no interaction with the job-level pool.
  ThreadPool pool(4);
  std::vector<double> results(16, 0.0);
  pool.run_indexed(16, [&](std::size_t job) {
    results[job] = dqma::sweep::parallel_reduce<double>(
        100, 1, 0.0,
        [job](std::size_t begin, std::size_t end) {
          double acc = 0.0;
          for (std::size_t i = begin; i < end; ++i) {
            acc += static_cast<double>(i * (job + 1));
          }
          return acc;
        },
        [](double a, double b) { return a + b; });
  });
  for (std::size_t job = 0; job < results.size(); ++job) {
    EXPECT_DOUBLE_EQ(results[job], 4950.0 * static_cast<double>(job + 1));
  }
}

TEST(ParallelReduceTest, CombinesPartialsInChunkOrder) {
  // A non-commutative combine exposes the ordering: concatenation must
  // come out in ascending chunk order at any thread count.
  const auto run = [](int threads) {
    const dqma::sweep::KernelThreadScope scope(threads);
    return dqma::sweep::parallel_reduce<std::string>(
        26, 2, std::string(),
        [](std::size_t begin, std::size_t end) {
          std::string s;
          for (std::size_t i = begin; i < end; ++i) {
            s.push_back(static_cast<char>('a' + i));
          }
          return s;
        },
        [](std::string a, std::string b) { return a + b; });
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, "abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(run(3), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  const double value = dqma::sweep::parallel_reduce<double>(
      0, 1, 42.0, [](std::size_t, std::size_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(value, 42.0);
}

TEST(ParamGridTest, EnumeratesRowMajorFirstAxisSlowest) {
  ParamGrid grid;
  grid.axis("n", std::vector<int>{16, 64});
  grid.axis("r", std::vector<int>{2, 4, 8});
  ASSERT_EQ(grid.size(), 6u);
  const auto points = grid.enumerate();
  ASSERT_EQ(points.size(), 6u);
  // Matches the nesting order of the serial loops the benches replaced:
  // for n { for r { ... } }.
  const std::vector<std::pair<long long, long long>> expected{
      {16, 2}, {16, 4}, {16, 8}, {64, 2}, {64, 4}, {64, 8}};
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].get_int("n"), expected[i].first) << i;
    EXPECT_EQ(points[i].get_int("r"), expected[i].second) << i;
  }
}

TEST(ParamGridTest, EmptyGridHasNoPoints) {
  ParamGrid grid;
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.enumerate().empty());
}

TEST(ParamGridTest, MixedAxisTypes) {
  ParamGrid grid;
  grid.axis("mode", std::vector<std::string>{"fast", "exact"});
  grid.axis("delta", std::vector<double>{0.1, 0.3});
  const auto points = grid.enumerate();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].get_string("mode"), "fast");
  EXPECT_DOUBLE_EQ(points[1].get_double("delta"), 0.3);
  EXPECT_EQ(points[3].get_string("mode"), "exact");
}

TEST(NamedValuesTest, TypedAccessorsAndLookup) {
  Metrics metrics;
  metrics.set("count", 7).set("rate", 0.25).set("ok", true).set("tag", "x");
  EXPECT_EQ(metrics.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(metrics.get_double("rate"), 0.25);
  // get_double accepts integer entries (cost metrics are often integral).
  EXPECT_DOUBLE_EQ(metrics.get_double("count"), 7.0);
  EXPECT_TRUE(metrics.get_bool("ok"));
  EXPECT_EQ(metrics.get_string("tag"), "x");
  EXPECT_EQ(metrics.find("missing"), nullptr);
  EXPECT_THROW(metrics.get_int("rate"), std::invalid_argument);
}

std::vector<JobResult> sweep_with_threads(int threads) {
  ParamGrid grid;
  grid.axis("a", std::vector<int>{1, 2, 3, 4, 5, 6, 7});
  grid.axis("b", std::vector<int>{10, 20, 30});
  ThreadPool pool(threads);
  return run_sweep(pool, grid.enumerate(), /*base_seed=*/42,
                   [](const ParamPoint& p, Rng& rng) {
                     Metrics m;
                     // Mix grid parameters with per-job random draws: any
                     // cross-thread seed leakage or result misordering
                     // changes a metric.
                     m.set("sum", p.get_int("a") + p.get_int("b"));
                     m.set("draw", static_cast<long long>(rng.next_u64()));
                     m.set("unit", rng.next_double());
                     return m;
                   });
}

TEST(RunSweepTest, ResultsIdenticalAcrossThreadCounts) {
  const auto serial = sweep_with_threads(1);
  const auto parallel = sweep_with_threads(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << "job " << i;
  }
}

TEST(RunSweepTest, DistinctJobsGetDistinctStreams) {
  const auto results = sweep_with_threads(2);
  std::set<long long> draws;
  for (const auto& result : results) {
    draws.insert(result.metrics.get_int("draw"));
  }
  EXPECT_EQ(draws.size(), results.size());
}

std::string json_bytes_with_threads(int threads) {
  ResultSink sink;
  sink.begin_experiment("determinism_probe", "threads-invariance fixture");
  ParamGrid grid;
  grid.axis("x", std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const auto points = grid.enumerate();
  ThreadPool pool(threads);
  const auto results = run_sweep(
      pool, points, /*base_seed=*/7, [](const ParamPoint& p, Rng& rng) {
        Metrics m;
        m.set("value", rng.next_double() * p.get_double("x"));
        m.set("draw", static_cast<long long>(rng.next_u64()));
        return m;
      });
  for (std::size_t i = 0; i < points.size(); ++i) {
    sink.add_point(points[i], results[i].metrics, results[i].wall_ms);
  }
  sink.end_experiment(123.0);
  // Default options: timings excluded, exactly like the dqma_bench default.
  return sink.to_json({/*smoke=*/false, /*base_seed=*/7,
                       /*include_timings=*/false})
      .dump();
}

TEST(RunSweepTest, JsonBytesIdenticalAcrossThreadCounts) {
  // The acceptance criterion of the sweep subsystem, in miniature: same
  // seed, --threads 1 vs --threads 8, byte-identical JSON.
  const std::string serial = json_bytes_with_threads(1);
  const std::string parallel = json_bytes_with_threads(8);
  EXPECT_EQ(serial, parallel);
  // Sanity: the document is non-trivial and carries the schema tag.
  EXPECT_NE(serial.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(serial.find("determinism_probe"), std::string::npos);
}

TEST(ResultSinkTest, TimingsAreOptIn) {
  ResultSink sink;
  sink.begin_experiment("exp", "d");
  sink.add_point(ParamPoint().set("n", 1), Metrics().set("m", 2), 3.5);
  sink.end_experiment(9.0);
  const std::string without =
      sink.to_json({false, 0, /*include_timings=*/false}).dump();
  const std::string with =
      sink.to_json({false, 0, /*include_timings=*/true}).dump();
  EXPECT_EQ(without.find("wall_ms"), std::string::npos);
  EXPECT_NE(with.find("wall_ms"), std::string::npos);
}

TEST(JsonTest, EscapesAndFormatsDeterministically) {
  Json obj = Json::object();
  obj.add("text", Json("line\n\"quoted\"\\"));
  obj.add("tenth", Json(0.1));
  obj.add("count", Json(42));
  const std::string dumped = obj.dump();
  EXPECT_NE(dumped.find("\"line\\n\\\"quoted\\\"\\\\\""), std::string::npos);
  // Shortest round-trip double formatting: exactly "0.1".
  EXPECT_NE(dumped.find("\"tenth\": 0.1"), std::string::npos);
  EXPECT_NE(dumped.find("\"count\": 42"), std::string::npos);
}

TEST(Fnv1a64Test, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(dqma::sweep::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(dqma::sweep::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(dqma::sweep::fnv1a64("table2_eq"),
            dqma::sweep::fnv1a64("table2_relay"));
}

}  // namespace

// Tests for the two-party communication substrate: one-way protocols (EQ,
// Hamming, LTF), QMA one-way instances, LSD, and the protocol-to-LSD
// reduction.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/eq_protocol.hpp"
#include "comm/hamming_protocol.hpp"
#include "comm/history_state.hpp"
#include "comm/lsd.hpp"
#include "comm/ltf_protocol.hpp"
#include "comm/qma_one_way.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace {

using dqma::comm::and_amplify;
using dqma::comm::eq_as_qma_instance;
using dqma::comm::EqOneWayProtocol;
using dqma::comm::HammingOneWayProtocol;
using dqma::comm::lsd_from_qma_instance;
using dqma::comm::lsd_qma_instance;
using dqma::comm::LsdInstance;
using dqma::comm::LtfOneWayProtocol;
using dqma::comm::no_instance_distance_bound;
using dqma::comm::qubits_for_dim;
using dqma::comm::QmaOneWayInstance;
using dqma::linalg::CVec;
using dqma::test::random_unequal_pair;
using dqma::test::random_unequal_to;
using dqma::util::Bitstring;
using dqma::util::Rng;

TEST(OneWayTest, QubitsForDim) {
  EXPECT_EQ(qubits_for_dim(1), 0);
  EXPECT_EQ(qubits_for_dim(2), 1);
  EXPECT_EQ(qubits_for_dim(3), 2);
  EXPECT_EQ(qubits_for_dim(1024), 10);
}

TEST(EqProtocolTest, PerfectCompleteness) {
  Rng rng(1);
  const EqOneWayProtocol eq(24, 0.3);
  const Bitstring x = Bitstring::random(24, rng);
  EXPECT_NEAR(eq.honest_accept(x, x), 1.0, 1e-10);
}

TEST(EqProtocolTest, SoundnessBelowDeltaSquared) {
  Rng rng(2);
  const EqOneWayProtocol eq(24, 0.3);
  for (int trial = 0; trial < 30; ++trial) {
    const auto [x, y] = random_unequal_pair(24, rng);
    EXPECT_LE(eq.honest_accept(x, y), 0.3 * 0.3 + 1e-10);
  }
}

TEST(EqProtocolTest, MessageCostIsLogarithmic) {
  const EqOneWayProtocol small(32, 0.3);
  const EqOneWayProtocol large(2048, 0.3);
  EXPECT_LE(large.message_qubits() - small.message_qubits(), 8);
}

TEST(HammingProtocolTest, CompletenessIsExactlyOne) {
  Rng rng(3);
  const int n = 48;
  const int d = 3;
  const HammingOneWayProtocol ham(n, d, 0.3, 3);
  for (int dist = 0; dist <= d; ++dist) {
    const Bitstring x = Bitstring::random(n, rng);
    const Bitstring y = Bitstring::random_at_distance(x, dist, rng);
    EXPECT_NEAR(ham.honest_accept(x, y), 1.0, 1e-9)
        << "distance " << dist;
  }
}

TEST(HammingProtocolTest, SoundnessDecaysWithCopies) {
  Rng rng(4);
  const int n = 48;
  const int d = 2;
  const HammingOneWayProtocol weak(n, d, 0.3, 1, 77);
  const HammingOneWayProtocol strong(n, d, 0.3, 4, 77);
  double weak_err = 0.0;
  double strong_err = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const Bitstring x = Bitstring::random(n, rng);
    const Bitstring y = Bitstring::random_at_distance(x, d + 4, rng);
    weak_err += weak.honest_accept(x, y);
    strong_err += strong.honest_accept(x, y);
  }
  EXPECT_LT(strong_err, weak_err + 1e-9);
  EXPECT_LT(strong_err / trials, 1.0 / 3.0);
}

TEST(HammingProtocolTest, RecommendedCopiesMeetTarget) {
  const int k = HammingOneWayProtocol::recommended_copies(4, 0.3);
  const double err = 5 * std::pow(0.09, k);
  EXPECT_LE(err, 1.0 / 6.0);
}

TEST(HammingProtocolTest, BlockMasksPartitionIndices) {
  const HammingOneWayProtocol ham(40, 2, 0.3, 2);
  std::vector<int> owner(40, -1);
  for (int b = 0; b < ham.block_count(); ++b) {
    const Bitstring& mask = ham.block_mask(b);
    for (int i = 0; i < 40; ++i) {
      if (mask.get(i)) {
        EXPECT_EQ(owner[static_cast<std::size_t>(i)], -1);
        owner[static_cast<std::size_t>(i)] = b;
      }
    }
  }
  for (const int o : owner) {
    EXPECT_GE(o, 0);
  }
}

TEST(HammingProtocolTest, PredicateMatchesDistance) {
  Rng rng(5);
  const HammingOneWayProtocol ham(32, 5, 0.3, 2);
  const Bitstring x = Bitstring::random(32, rng);
  EXPECT_TRUE(ham.predicate(x, Bitstring::random_at_distance(x, 5, rng)));
  EXPECT_FALSE(ham.predicate(x, Bitstring::random_at_distance(x, 6, rng)));
}

TEST(LtfProtocolTest, PredicateIsWeightedThreshold) {
  const LtfOneWayProtocol ltf({3, 1, 2}, 3, 0.3);
  const Bitstring x = Bitstring::from_string("000");
  // y = 010: weighted distance 1 <= 3.
  EXPECT_TRUE(ltf.predicate(x, Bitstring::from_string("010")));
  // y = 101: weighted distance 3 + 2 = 5 > 3.
  EXPECT_FALSE(ltf.predicate(x, Bitstring::from_string("101")));
}

TEST(LtfProtocolTest, CompletenessOne) {
  const LtfOneWayProtocol ltf({2, 2, 1, 1}, 2, 0.3);
  const Bitstring x = Bitstring::from_string("1010");
  const Bitstring y = Bitstring::from_string("1011");  // weighted dist 1
  EXPECT_NEAR(ltf.honest_accept(x, y), 1.0, 1e-9);
}

TEST(LtfProtocolTest, RejectsAboveThreshold) {
  const LtfOneWayProtocol ltf({4, 4, 4}, 2, 0.25);
  const Bitstring x = Bitstring::from_string("000");
  const Bitstring y = Bitstring::from_string("100");  // weighted dist 4 > 2
  EXPECT_LT(ltf.honest_accept(x, y), 1.0 / 3.0);
}

TEST(QmaOneWayTest, EqInstanceRoundTrip) {
  Rng rng(6);
  const EqOneWayProtocol eq(16, 128, 0.3, 0x0ddba11);
  const Bitstring x = Bitstring::random(16, rng);
  const auto yes = eq_as_qma_instance(eq, x, x);
  yes.validate();
  EXPECT_TRUE(yes.yes_instance);
  EXPECT_NEAR(yes.accept(yes.honest_proof), 1.0, 1e-9);

  const Bitstring y = random_unequal_to(x, rng);
  const auto no = eq_as_qma_instance(eq, x, y);
  no.validate();
  EXPECT_FALSE(no.yes_instance);
  // Worst case over proofs is still bounded by delta^2: the proof space is
  // trivial, so the message is always |h_x>.
  EXPECT_LE(no.max_accept(), 0.09 + 1e-8);
}

TEST(QmaOneWayTest, AndAmplifyPowersSoundness) {
  Rng rng(7);
  const EqOneWayProtocol eq(12, 64, 0.3, 0x0ddba11);
  const auto [x, y] = random_unequal_pair(12, rng);
  const auto base = eq_as_qma_instance(eq, x, y);
  const double single = base.max_accept();
  // Amplifying EQ squares the message dimension: keep k = 2 and compare.
  // (dim m^2 can be large; use a small scheme.)
  if (base.message_dim() <= 100) {
    const auto doubled = and_amplify(base, 2);
    EXPECT_NEAR(doubled.max_accept(), single * single, 1e-8);
  }
  const auto amp = and_amplify(base, 1);
  EXPECT_NEAR(amp.max_accept(), single, 1e-10);
}

TEST(LsdTest, ClosePairDistanceMatchesAngle) {
  Rng rng(8);
  const double angle = 0.1;
  const auto inst = LsdInstance::close_pair(16, 3, angle, rng);
  EXPECT_NEAR(inst.distance(), std::sqrt(2.0 - 2.0 * std::cos(angle)), 1e-6);
  EXPECT_TRUE(inst.is_yes());
}

TEST(LsdTest, FarPairIsMaximallyDistant) {
  Rng rng(9);
  const auto inst = LsdInstance::far_pair(16, 3, rng);
  EXPECT_NEAR(inst.distance(), LsdInstance::kSqrt2, 1e-6);
  EXPECT_TRUE(inst.is_no());
}

TEST(LsdTest, QmaProtocolCompletenessOnYesInstances) {
  Rng rng(10);
  const auto inst = LsdInstance::close_pair(20, 4, 0.1, rng);
  const auto qma = lsd_qma_instance(inst);
  qma.validate();
  // Accept >= (1 - Delta^2/2)^2 >= 0.98 on the honest proof.
  EXPECT_GE(qma.accept(qma.honest_proof), 0.98);
}

TEST(LsdTest, QmaProtocolSoundnessOnNoInstances) {
  Rng rng(11);
  const auto inst = LsdInstance::far_pair(20, 4, rng);
  const auto qma = lsd_qma_instance(inst);
  // Worst case over all proofs: sigma_max^2 <= (1 - Delta^2/2)^2 ~ 0.
  EXPECT_LE(qma.max_accept(), 0.05);
}

TEST(LsdTest, CostIsLogarithmicInAmbientDimension) {
  Rng rng(12);
  const auto small = lsd_qma_instance(LsdInstance::far_pair(16, 2, rng));
  const auto large = lsd_qma_instance(LsdInstance::far_pair(256, 2, rng));
  EXPECT_EQ(large.cost_qubits() - small.cost_qubits(), 2 * 4);
}

TEST(HistoryStateTest, YesInstanceReducesToCloseSubspaces) {
  Rng rng(13);
  const EqOneWayProtocol eq(10, 128, 0.3, 0x0ddba11);
  const Bitstring x = Bitstring::random(10, rng);
  const auto yes = eq_as_qma_instance(eq, x, x);
  const auto lsd = lsd_from_qma_instance(yes, 0.5);
  // Perfect completeness: Alice's range contains |h_x> = |h_y>, which lies
  // in Bob's top eigenspace, so the subspaces intersect: distance ~ 0.
  EXPECT_LE(lsd.distance(), 0.1 * LsdInstance::kSqrt2 + 1e-6);
}

TEST(HistoryStateTest, NoInstanceReducesToFarSubspaces) {
  Rng rng(14);
  const EqOneWayProtocol eq(10, 128, 0.3, 0x0ddba11);
  const auto [x, y] = random_unequal_pair(10, rng);
  const auto no = eq_as_qma_instance(eq, x, y);
  const auto lsd = lsd_from_qma_instance(no, 0.5);
  // Soundness delta^2 = 0.09, tau = 0.5: distance >= sqrt(2 - 2 sqrt(0.18)).
  EXPECT_GE(lsd.distance() + 1e-6, no_instance_distance_bound(0.09, 0.5));
}

TEST(HistoryStateTest, NoInstanceBoundIsMonotone) {
  EXPECT_GT(no_instance_distance_bound(0.01, 0.5),
            no_instance_distance_bound(0.2, 0.5));
  EXPECT_NEAR(no_instance_distance_bound(0.0, 0.5), LsdInstance::kSqrt2, 1e-9);
}

}  // namespace

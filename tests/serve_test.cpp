// The dqma_serve subsystem (src/serve/): request parsing and response
// framing, the single-flight shape cache and its deterministic counters,
// handler byte-determinism across cache temperature, and the server
// engine's ordering, backpressure, and drain guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/framing.hpp"
#include "serve/handlers.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/shape_cache.hpp"
#include "sweep/sweep.hpp"
#include "util/json_reader.hpp"
#include "util/rng.hpp"

namespace {

using dqma::serve::parse_request;
using dqma::serve::Request;
using dqma::serve::Server;
using dqma::serve::ServerConfig;
using dqma::serve::ShapeCache;

struct RegisterWorkloads {
  RegisterWorkloads() { dqma::serve::register_builtin_workloads(); }
};
const RegisterWorkloads g_register;

TEST(RequestTest, ParsesAllFields) {
  const Request request = parse_request(
      R"({"workload":"auction_gt","id":"r-1","seed":99,)"
      R"("params":{"n":16,"delta":0.25,"label":"x","flag":true}})");
  EXPECT_EQ(request.workload, "auction_gt");
  EXPECT_EQ(request.id, "r-1");
  EXPECT_EQ(request.seed, 99u);
  EXPECT_EQ(request.params.get_int("n"), 16);
  EXPECT_EQ(request.params.get_double("delta"), 0.25);
  EXPECT_EQ(request.params.get_string("label"), "x");
  EXPECT_TRUE(request.params.get_bool("flag"));
}

TEST(RequestTest, DefaultsAndRejections) {
  const Request minimal = parse_request(R"({"workload":"w"})");
  EXPECT_EQ(minimal.id, "");
  EXPECT_EQ(minimal.seed, 0u);
  EXPECT_TRUE(minimal.params.empty());

  EXPECT_THROW(parse_request("not json"), std::exception);
  EXPECT_THROW(parse_request("[1,2]"), std::exception);
  EXPECT_THROW(parse_request(R"({"id":"no-workload"})"), std::exception);
  // Unknown fields are rejected, not ignored: a typo must not silently
  // fall back to workload defaults.
  EXPECT_THROW(parse_request(R"({"workload":"w","sede":1})"),
               std::exception);
}

TEST(RequestTest, ResponseFraming) {
  dqma::sweep::Metrics metrics;
  metrics.set("accept", 0.5).set("count", 3);
  EXPECT_EQ(dqma::serve::ok_response("a", metrics),
            R"({"id":"a","ok":true,"metrics":{"accept":0.5,"count":3}})");
  EXPECT_EQ(dqma::serve::error_response("b", "bad"),
            R"({"id":"b","ok":false,"error":"bad"})");
  EXPECT_EQ(dqma::serve::error_response("c", "busy", /*retry=*/true),
            R"({"id":"c","ok":false,"error":"busy","retry":true})");
}

TEST(LineDecoderTest, SplitsLinesAcrossArbitraryChunkBoundaries) {
  dqma::serve::LineDecoder decoder;
  decoder.feed("first");
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed(" line\nsec");
  auto line = decoder.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "first line");
  EXPECT_FALSE(line->oversized);
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed("ond\n\n");  // empty lines are legal frames
  EXPECT_EQ(decoder.next()->text, "second");
  EXPECT_EQ(decoder.next()->text, "");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(LineDecoderTest, FinishFlushesUnterminatedTail) {
  dqma::serve::LineDecoder decoder;
  decoder.feed("tail without newline");
  EXPECT_FALSE(decoder.next().has_value());
  auto tail = decoder.finish();
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->text, "tail without newline");
  EXPECT_FALSE(decoder.finish().has_value());  // nothing left
}

TEST(LineDecoderTest, OversizedLineIsOneEventAndMemoryStaysBounded) {
  dqma::serve::LineDecoder decoder(16);
  // The oversize event fires the moment the cap is crossed — before the
  // line's newline ever arrives — so the daemon can answer while the
  // attacker is still streaming.
  decoder.feed(std::string(17, 'x'));
  auto event = decoder.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->oversized);
  EXPECT_TRUE(event->text.empty());

  // The rest of the flood is discarded without buffering or new events,
  // and the decoder resynchronizes at the next newline.
  decoder.feed(std::string(1 << 20, 'x'));
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed("x\nback to normal\n");
  auto line = decoder.next();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "back to normal");
  EXPECT_FALSE(line->oversized);
  // A tail belonging to a discarded oversized line never resurfaces.
  decoder.feed(std::string(17, 'y'));
  EXPECT_TRUE(decoder.next()->oversized);
  EXPECT_FALSE(decoder.finish().has_value());
}

TEST(LineDecoderTest, LineExactlyAtTheCapIsDelivered) {
  dqma::serve::LineDecoder decoder(8);
  decoder.feed("12345678\n123456789\n");
  auto ok = decoder.next();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->text, "12345678");
  EXPECT_FALSE(ok->oversized);
  EXPECT_TRUE(decoder.next()->oversized);
}

TEST(ShapeCacheTest, SingleFlightBuildsOnceAndCountsDeterministically) {
  ShapeCache cache;
  std::atomic<int> builds{0};

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const int>> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[static_cast<std::size_t>(t)] = cache.get_or_build<int>("k", [&] {
        builds.fetch_add(1);
        return 41 + 1;
      });
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  // Single-flight: one build, every caller sees the same instance, and the
  // counters are a pure function of the request multiset (misses ==
  // distinct keys) — NOT of scheduling.
  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
    EXPECT_EQ(*seen[static_cast<std::size_t>(t)], 42);
  }
  const ShapeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ShapeCacheTest, ThrowingBuilderRetriesOnNextLookup) {
  ShapeCache cache;
  int attempts = 0;
  EXPECT_THROW(cache.get_or_build<int>("k",
                                       [&]() -> int {
                                         ++attempts;
                                         throw std::runtime_error("boom");
                                       }),
               std::runtime_error);
  const auto value = cache.get_or_build<int>("k", [&] {
    ++attempts;
    return 7;
  });
  EXPECT_EQ(*value, 7);
  EXPECT_EQ(attempts, 2);
}

TEST(HandlersTest, ResponseBytesAreAPureFunctionOfTheRequestLine) {
  const std::string line =
      R"({"workload":"config_drift","id":"d","seed":5,)"
      R"("params":{"n":16,"d":2,"drift":4,"reps":6,"samples":30}})";
  ShapeCache cold;
  ShapeCache warm;
  bool ok = false;
  const std::string first = handle_request_line(line, warm, &ok);
  EXPECT_TRUE(ok);
  const std::string second = handle_request_line(line, warm, &ok);
  const std::string fresh = handle_request_line(line, cold, &ok);
  // Warm == cold cache, call after call: the cache can change latency,
  // never bytes.
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, fresh);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;
}

TEST(HandlersTest, BuiltinWorkloadsComputeSensibleMetrics) {
  ShapeCache cache;
  // A winning bid accepts with certainty (perfect completeness).
  const std::string win = handle_request_line(
      R"({"workload":"auction_gt","id":"w","seed":1,)"
      R"("params":{"n":12,"r":2,"reps":8,"bid":900,"reserve":100}})",
      cache);
  EXPECT_NE(win.find("\"bid_wins\":true"), std::string::npos) << win;
  const dqma::util::json::Node parsed = dqma::util::json::parse(win);
  double accept = -1.0;
  for (const auto& [key, value] : parsed.members()) {
    if (key == "metrics") {
      for (const auto& [name, metric] : value.members()) {
        if (name == "accept") {
          accept = metric.as_double();
        }
      }
    }
  }
  EXPECT_GT(accept, 0.99) << win;
  // A losing bid is an attack bounded well below 1.
  const std::string lose = handle_request_line(
      R"({"workload":"auction_gt","id":"l","seed":1,)"
      R"("params":{"n":12,"r":2,"reps":8,"bid":100,"reserve":900}})",
      cache);
  EXPECT_NE(lose.find("\"bid_wins\":false"), std::string::npos) << lose;

  // Errors come back as responses, never as exceptions.
  bool ok = true;
  const std::string unknown = handle_request_line(
      R"({"workload":"nope","id":"u"})", cache, &ok);
  EXPECT_FALSE(ok);
  EXPECT_NE(unknown.find("\"ok\":false"), std::string::npos);
  const std::string bad_param = handle_request_line(
      R"({"workload":"auction_gt","id":"b","params":{"n":9999}})", cache,
      &ok);
  EXPECT_FALSE(ok);
  EXPECT_NE(bad_param.find("out of range"), std::string::npos) << bad_param;
}

TEST(ServerTest, DeliversResponsesInSubmissionOrder) {
  Server server(ServerConfig{4, 256});
  std::vector<std::string> responses;
  std::mutex mutex;
  constexpr int kRequests = 32;
  for (int i = 0; i < kRequests; ++i) {
    server.submit(
        R"({"workload":"auction_gt","id":"q)" + std::to_string(i) +
            R"(","seed":)" + std::to_string(i) +
            R"(,"params":{"n":12,"r":2,"reps":6,"bid":900,"reserve":100}})",
        [&](std::string response) {
          const std::lock_guard<std::mutex> lock(mutex);
          responses.push_back(std::move(response));
        });
  }
  server.drain();
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_NE(responses[static_cast<std::size_t>(i)].find(
                  "\"id\":\"q" + std::to_string(i) + "\""),
              std::string::npos)
        << "response " << i << " out of order: "
        << responses[static_cast<std::size_t>(i)];
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.ok, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.overloaded, 0u);
}

TEST(ServerTest, OverloadProducesRetryableErrorResponse) {
  // A test workload that blocks until released lets us fill the queue
  // deterministically: dispatcher busy on the blocker, max_pending queued,
  // the next submission must bounce with "retry": true.
  static std::promise<void> started;
  static std::promise<void> release;
  static std::shared_future<void> release_future(release.get_future());
  dqma::serve::register_workload(
      {"test_block", "blocks until released (test only)",
       [](const Request&, ShapeCache&, dqma::util::Rng&) {
         started.set_value();
         release_future.wait();
         return dqma::sweep::Metrics().set("done", true);
       }});

  Server server(ServerConfig{2, /*max_pending=*/2});
  std::atomic<int> delivered{0};
  server.submit(R"({"workload":"test_block","id":"blocker"})",
                [&](std::string) { delivered.fetch_add(1); });
  started.get_future().wait();  // dispatcher is now busy on the blocker

  server.submit(R"({"workload":"auction_gt","id":"f1","params":{"n":8,"r":2,"reps":4,"bid":200,"reserve":50}})",
                [&](std::string) { delivered.fetch_add(1); });
  server.submit(R"({"workload":"auction_gt","id":"f2","params":{"n":8,"r":2,"reps":4,"bid":200,"reserve":50}})",
                [&](std::string) { delivered.fetch_add(1); });

  std::string overload;
  const bool accepted = server.submit(
      R"({"workload":"auction_gt","id":"f3","params":{"n":8,"r":2,"reps":4,"bid":200,"reserve":50}})",
      [&](std::string response) { overload = std::move(response); });
  EXPECT_FALSE(accepted);
  // The rejection is immediate, carries the request id, and asks the
  // client to retry.
  EXPECT_EQ(overload,
            R"({"id":"f3","ok":false,"error":"server overloaded","retry":true})");

  release.set_value();
  server.drain();
  EXPECT_EQ(delivered.load(), 3);
  const auto stats = server.stats();
  EXPECT_EQ(stats.overloaded, 1u);
  EXPECT_EQ(stats.accepted, 3u);
}

TEST(ServerTest, ShutdownDrainsAcceptedRequestsAndRejectsNewOnes) {
  auto server = std::make_unique<Server>(ServerConfig{2, 64});
  std::atomic<int> delivered{0};
  for (int i = 0; i < 8; ++i) {
    server->submit(
        R"({"workload":"auction_gt","id":"s)" + std::to_string(i) +
            R"(","seed":)" + std::to_string(i) +
            R"(,"params":{"n":10,"r":2,"reps":4,"bid":500,"reserve":60}})",
        [&](std::string) { delivered.fetch_add(1); });
  }
  server->shutdown();
  EXPECT_EQ(delivered.load(), 8) << "shutdown must drain accepted work";

  std::string rejected;
  EXPECT_FALSE(server->submit(R"({"workload":"auction_gt","id":"late"})",
                              [&](std::string response) {
                                rejected = std::move(response);
                              }));
  EXPECT_NE(rejected.find("shutting down"), std::string::npos);
  server.reset();  // double-shutdown via the destructor must be safe
}

}  // namespace

// Tests for the tiled (memory-mapped scratch) density storage: tiled ==
// in-core byte identity through every dense pass, factory parity, the
// dense-cap opt-in semantics, and — gated behind DQMA_BIG_TILED=1 — a full
// mixed-state pass at dim 2^15, past the in-core wall.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "quantum/density.hpp"
#include "quantum/partial_trace.hpp"
#include "quantum/random.hpp"
#include "quantum/unitary.hpp"
#include "support/test_support.hpp"
#include "util/fault.hpp"
#include "util/scratch.hpp"
#include "util/tolerance.hpp"

namespace {

using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::quantum::Density;
using dqma::quantum::PureState;
using dqma::quantum::RegisterShape;
using dqma::quantum::TiledDensityScope;
using dqma::test::Rng;
using dqma::test::SeededTest;
using dqma::util::ScratchTile;

class TiledDensityTest : public SeededTest {
 protected:
  void SetUp() override { ScratchTile::set_directory(::testing::TempDir()); }
  void TearDown() override { ScratchTile::set_directory(""); }
};

RegisterShape qubits(int n) {
  return RegisterShape(std::vector<int>(static_cast<std::size_t>(n), 2));
}

/// Every entry of the two densities, compared for bit equality.
void expect_same_bytes(const Density& a, const Density& b) {
  const long long d = a.shape().total_dim();
  ASSERT_EQ(b.shape().total_dim(), d);
  const auto va = a.view();
  const auto vb = b.view();
  for (long long k = 0; k < d * d; ++k) {
    const Complex x = va.load(k);
    const Complex y = vb.load(k);
    ASSERT_EQ(std::memcmp(&x, &y, sizeof(Complex)), 0)
        << "entry " << k << ": (" << x.real() << "," << x.imag() << ") vs ("
        << y.real() << "," << y.imag() << ")";
  }
}

/// A mixed state built from two pure projectors; deterministic per seed key.
Density mixed_state(const RegisterShape& shape, std::uint64_t key) {
  const int d = static_cast<int>(shape.total_dim());
  Rng rng_a(0xd0c5eedULL ^ key);
  Rng rng_b(0xd0c5eedULL ^ (key + 77));
  Density rho = Density::from_pure(
      PureState(shape, dqma::quantum::haar_state(d, rng_a), true));
  const Density other = Density::from_pure(
      PureState(shape, dqma::quantum::haar_state(d, rng_b), true));
  rho.mix_with(other, 0.625);
  return rho;
}

TEST_F(TiledDensityTest, FactoriesMatchInCoreBytes) {
  const RegisterShape shape = qubits(6);
  std::vector<double> probs(64);
  double sum = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    probs[i] = 1.0 + 0.5 * std::cos(0.3 * static_cast<double>(i));
    sum += probs[i];
  }
  for (double& p : probs) p /= sum;
  // Renormalize exactly enough for the 1e-9 trace check.
  Rng rng_pure(123);
  const PureState psi(shape, dqma::quantum::haar_state(64, rng_pure), true);

  const Density mm_incore = Density::maximally_mixed(shape);
  const Density diag_incore = Density::diagonal(shape, probs);
  const Density pure_incore = Density::from_pure(psi);
  EXPECT_FALSE(mm_incore.tiled());

  const TiledDensityScope scope(0);
  const Density mm_tiled = Density::maximally_mixed(shape);
  const Density diag_tiled = Density::diagonal(shape, probs);
  const Density pure_tiled = Density::from_pure(psi);
  ASSERT_TRUE(mm_tiled.tiled());
  ASSERT_TRUE(diag_tiled.tiled());
  ASSERT_TRUE(pure_tiled.tiled());

  expect_same_bytes(mm_tiled, mm_incore);
  expect_same_bytes(diag_tiled, diag_incore);
  expect_same_bytes(pure_tiled, pure_incore);
}

TEST_F(TiledDensityTest, FullPassPipelineMatchesInCoreBytes) {
  const RegisterShape shape = qubits(6);
  Rng rng_u(55);
  const CMat u = dqma::quantum::haar_unitary(4, rng_u);
  CMat effect(4, 4);
  effect(0, 0) = Complex{1.0, 0.0};
  effect(3, 3) = Complex{1.0, 0.0};

  const auto run_pipeline = [&](bool tiled) {
    struct Result {
      double expect_before;
      double branch_prob;
      double expect_after;
      Density reduced;
      Density rho;
    };
    std::unique_ptr<TiledDensityScope> scope;
    if (tiled) {
      scope = std::make_unique<TiledDensityScope>(0);
    }
    Density rho = mixed_state(shape, 9);
    EXPECT_EQ(rho.tiled(), tiled);
    rho.apply(u, {1, 4});
    const double expect_before = rho.expectation(effect, {0, 3});
    const double branch_prob = rho.project(effect, {2, 5});
    const double expect_after = rho.expectation(effect, {1, 2});
    Density reduced = dqma::quantum::partial_trace(rho, {0, 5});
    return Result{expect_before, branch_prob, expect_after,
                  std::move(reduced), std::move(rho)};
  };

  const auto incore = run_pipeline(false);
  const auto tiled = run_pipeline(true);
  ASSERT_TRUE(tiled.rho.tiled());
  // Scalar outputs are bit-identical, not merely close.
  EXPECT_EQ(std::memcmp(&tiled.expect_before, &incore.expect_before,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&tiled.branch_prob, &incore.branch_prob,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&tiled.expect_after, &incore.expect_after,
                        sizeof(double)),
            0);
  expect_same_bytes(tiled.rho, incore.rho);
  expect_same_bytes(tiled.reduced, incore.reduced);
}

TEST_F(TiledDensityTest, MixWithAcrossStorageKinds) {
  const RegisterShape shape = qubits(5);
  Density incore = mixed_state(shape, 1);
  Density expected = incore;
  const Density partner = mixed_state(shape, 2);
  expected.mix_with(partner, 0.375);

  const TiledDensityScope scope(0);
  Density tiled = mixed_state(shape, 1);
  ASSERT_TRUE(tiled.tiled());
  tiled.mix_with(partner, 0.375);  // tiled target, in-core partner
  expect_same_bytes(tiled, expected);
}

TEST_F(TiledDensityTest, CopySemanticsAreDeep) {
  const TiledDensityScope scope(0);
  const Density original = mixed_state(qubits(4), 3);
  ASSERT_TRUE(original.tiled());
  Density copy = original;
  ASSERT_TRUE(copy.tiled());
  copy.mix_with(Density::maximally_mixed(qubits(4)), 0.5);
  // The original is untouched by mutating the copy.
  expect_same_bytes(original, mixed_state(qubits(4), 3));
}

TEST_F(TiledDensityTest, InCoreOnlyConsumersRefuseTiledStorage) {
  const TiledDensityScope scope(0);
  const Density tiled = Density::maximally_mixed(qubits(4));
  ASSERT_TRUE(tiled.tiled());
  EXPECT_THROW(tiled.matrix(), std::invalid_argument);
  EXPECT_THROW(tiled.tensor(tiled), std::invalid_argument);
}

TEST_F(TiledDensityTest, ScratchOptInGatesTheRaisedCap) {
  // Without scratch the dense cap stays at kMaxDenseExactDim...
  ScratchTile::set_directory("");
  EXPECT_THROW(Density::maximally_mixed(qubits(15)), std::invalid_argument);
  {
    // ...and the scope override cannot force tiles.
    const TiledDensityScope scope(0);
    EXPECT_FALSE(Density::maximally_mixed(qubits(4)).tiled());
  }
  // With scratch enabled the guard admits kMaxTiledDenseDim. (The actual
  // 2^15 pass is exercised by the DQMA_BIG_TILED-gated test below; here we
  // only pin that the threshold moved: 2^15 no longer throws the cap error
  // at validation time on a tiny stand-in.)
  ScratchTile::set_directory(::testing::TempDir());
  const TiledDensityScope scope(6);
  const Density small = Density::maximally_mixed(qubits(3));
  EXPECT_TRUE(small.tiled());
  EXPECT_NEAR(small.expectation(CMat::identity(2), {0}), 1.0, 1e-12);
}

TEST_F(TiledDensityTest, EnospcFallsBackToInCoreByteIdentically) {
  // A full scratch disk (injected) must not fail a job whose density still
  // fits the in-core cap: storage silently degrades to resident, and the
  // bytes are identical to a run where scratch worked.
  const RegisterShape shape = qubits(5);
  const Density reference = mixed_state(shape, 17);
  ASSERT_FALSE(reference.tiled());

  dqma::util::fault::reset_for_test("scratch:enospc");
  {
    const TiledDensityScope scope(0);
    const Density degraded = mixed_state(shape, 17);
    EXPECT_FALSE(degraded.tiled());  // wanted a tile, got in-core
    expect_same_bytes(degraded, reference);
  }
  dqma::util::fault::reset_for_test(nullptr);

  // Same scope without the injection: the tile materializes again.
  const TiledDensityScope scope(0);
  EXPECT_TRUE(Density::maximally_mixed(shape).tiled());
}

TEST_F(TiledDensityTest, EnospcPastTheInCoreCapFailsTheJobWithDiagnostic) {
  // Above kMaxDenseExactDim there is nothing to fall back to: the single
  // job fails with an error naming the dimension, instead of aborting the
  // process or silently truncating.
  dqma::util::fault::reset_for_test("scratch:enospc");
  try {
    Density::maximally_mixed(qubits(15));
    dqma::util::fault::reset_for_test(nullptr);
    FAIL() << "expected ScratchAllocationError";
  } catch (const dqma::util::ScratchAllocationError& e) {
    dqma::util::fault::reset_for_test(nullptr);
    EXPECT_NE(std::string(e.what()).find("32768"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("fall back"), std::string::npos)
        << e.what();
  }
}

TEST_F(TiledDensityTest, BigMixedStatePassAtDim32768) {
  if (std::getenv("DQMA_BIG_TILED") == nullptr) {
    GTEST_SKIP() << "set DQMA_BIG_TILED=1 (and optionally DQMA_SCRATCH_DIR) "
                    "to run the 16 GiB scratch pass";
  }
  const int n = 15;
  const long long d = 1LL << n;
  ASSERT_GT(d, dqma::util::kMaxDenseExactDim);
  const RegisterShape shape = qubits(n);
  std::vector<double> probs(static_cast<std::size_t>(d));
  double sum = 0.0;
  for (long long i = 0; i < d; ++i) {
    probs[static_cast<std::size_t>(i)] =
        1.0 + 0.5 * std::cos(0.001 * static_cast<double>(i));
    sum += probs[static_cast<std::size_t>(i)];
  }
  for (double& p : probs) p /= sum;

  Density rho = Density::diagonal(shape, probs);
  ASSERT_TRUE(rho.tiled());

  Rng rng_u(77);
  const CMat u = dqma::quantum::haar_unitary(4, rng_u);
  rho.apply(u, {0, 1});

  // tr((E tensor I) U rho U^dagger) for diagonal rho has the closed form
  // sum_i p_i M(a(i), a(i)) with M = U^dagger E U and a(i) the block index
  // of registers {0, 1} — O(D) to evaluate.
  CMat effect(4, 4);
  effect(0, 0) = Complex{1.0, 0.0};
  const CMat m = u.adjoint() * effect * u;
  double reference = 0.0;
  for (long long i = 0; i < d; ++i) {
    const long long block = i >> (n - 2);  // registers {0,1} are high-order
    reference += probs[static_cast<std::size_t>(i)] *
                 m(static_cast<int>(block), static_cast<int>(block)).real();
  }
  const double measured = rho.expectation(effect, {0, 1});
  EXPECT_NEAR(measured, reference, 1e-9);

  // Reducing to registers {0, 1} of U diag(p) U^dagger gives
  // U diag(s) U^dagger with s the block sums of p.
  const Density reduced = dqma::quantum::reduce_to(rho, {0, 1});
  std::vector<double> block_sums(4, 0.0);
  for (long long i = 0; i < d; ++i) {
    block_sums[static_cast<std::size_t>(i >> (n - 2))] +=
        probs[static_cast<std::size_t>(i)];
  }
  CMat diag(4, 4);
  for (int a = 0; a < 4; ++a) {
    diag(a, a) = Complex{block_sums[static_cast<std::size_t>(a)], 0.0};
  }
  const CMat expected = (u * diag).times_adjoint(u);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_NEAR(std::abs(reduced.matrix()(a, b) - expected(a, b)), 0.0, 1e-9)
          << a << "," << b;
    }
  }
}

}  // namespace

// Tests for the relay-point EQ protocol (Theorem 22 / Algorithm 6), the
// forall_t f construction (Theorem 32 / Algorithm 9) with the Hamming
// instantiation (Theorem 30), and the QMAcc -> dQMA conversion
// (Theorem 42 / Algorithm 10, Theorem 46).
#include <gtest/gtest.h>

#include <cmath>

#include "comm/eq_protocol.hpp"
#include "comm/history_state.hpp"
#include "comm/lsd.hpp"
#include "dqma/forall_f.hpp"
#include "dqma/from_qma_cc.hpp"
#include "dqma/hamming.hpp"
#include "dqma/relay_eq.hpp"
#include "network/graph.hpp"
#include "qtest/swap_test.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace {

using dqma::comm::EqOneWayProtocol;
using dqma::comm::lsd_qma_instance;
using dqma::comm::LsdInstance;
using dqma::network::Graph;
using dqma::protocol::ForallFProtocol;
using dqma::protocol::HammingGraphProtocol;
using dqma::protocol::message_swap_accept;
using dqma::protocol::QmaCcPathProtocol;
using dqma::protocol::RelayEqProtocol;
using dqma::protocol::theorem46_costs;
using dqma::test::random_unequal_pair;
using dqma::test::random_unequal_to;
using dqma::util::Bitstring;
using dqma::util::Rng;

// --- relay points ------------------------------------------------------------

TEST(RelayEqTest, PaperParameters) {
  EXPECT_EQ(RelayEqProtocol::paper_spacing(27), 3);
  EXPECT_EQ(RelayEqProtocol::paper_seg_reps(27), 42 * 9);
  EXPECT_EQ(RelayEqProtocol::paper_spacing(64), 4);
}

TEST(RelayEqTest, PerfectCompleteness) {
  Rng rng(1);
  const RelayEqProtocol protocol(16, 9, 0.3, 3, 10);
  const Bitstring x = Bitstring::random(16, rng);
  EXPECT_NEAR(protocol.completeness(x), 1.0, 1e-9);
}

TEST(RelayEqTest, SegmentLayoutCoversThePath) {
  const RelayEqProtocol protocol(27, 10, 0.3, 3, 5);
  EXPECT_EQ(protocol.relay_count(), 3);   // positions 3, 6, 9
  EXPECT_EQ(protocol.segment_count(), 4); // 0-3, 3-6, 6-9, 9-10
}

TEST(RelayEqTest, AttackIsCaughtWithPaperRepetitions) {
  Rng rng(2);
  const int n = 8;
  const int spacing = RelayEqProtocol::paper_spacing(n);
  const RelayEqProtocol protocol(n, 8, 0.3, spacing,
                                 RelayEqProtocol::paper_seg_reps(n));
  const auto [x, y] = random_unequal_pair(n, rng);
  EXPECT_LE(protocol.best_attack_accept(x, y), 1.0 / 3.0);
}

TEST(RelayEqTest, CostFormulaMatchesConstructedProtocol) {
  const RelayEqProtocol protocol(27, 10, 0.3, 3, 5);
  const auto built = protocol.costs();
  const auto formula = RelayEqProtocol::costs_for(27, 10, 0.3, 3, 5);
  EXPECT_EQ(built.total_proof_qubits, formula.total_proof_qubits);
  EXPECT_EQ(built.local_proof_qubits, formula.local_proof_qubits);
  EXPECT_EQ(built.total_message_qubits, formula.total_message_qubits);
}

TEST(RelayEqTest, TotalProofScalesAsNToTwoThirds) {
  // Quantum total ~ r n^{2/3} polylog vs classical r n: growing n by 64x
  // must grow the quantum total by roughly 64^{2/3} = 16 (up to the log
  // factor), far below the classical factor 64. Formula-level accounting:
  // construction at n = 2^18 would allocate a multi-hundred-MB code.
  const int r = 4096;  // long path: the relay regime r >> n^{1/3}
  const auto total = [&](int n) {
    return static_cast<double>(
        RelayEqProtocol::costs_for(n, r, 0.3, RelayEqProtocol::paper_spacing(n),
                                   RelayEqProtocol::paper_seg_reps(n))
            .total_proof_qubits);
  };
  const double t1 = total(1 << 12);
  const double t2 = total(1 << 18);
  const double growth = t2 / t1;
  EXPECT_LT(growth, 64.0);  // strictly beats the classical scaling
  EXPECT_GT(growth, 8.0);   // and is consistent with the 2/3 exponent
  // Crossover against the classical Omega(rn) total: at large n the
  // quantum total must be smaller.
  EXPECT_LT(t2, static_cast<double>(r) * (1 << 18) * 64.0)
      << "within the polylog factor of the crossover";
}

// --- forall_t f / Hamming ----------------------------------------------------

TEST(MessageSwapTest, ProductOverlapFormula) {
  Rng rng(3);
  const dqma::linalg::CVec a = dqma::quantum::haar_state(3, rng);
  const dqma::linalg::CVec b = dqma::quantum::haar_state(3, rng);
  // Single-register messages: matches the plain SWAP test.
  EXPECT_NEAR(message_swap_accept({a}, {b}),
              dqma::qtest::swap_test_accept(a, b), 1e-10);
  // Identical multi-register messages accept with certainty.
  EXPECT_NEAR(message_swap_accept({a, b}, {a, b}), 1.0, 1e-10);
}

TEST(HammingGraphTest, PerfectCompletenessOnYesInstances) {
  Rng rng(4);
  const Graph g = Graph::star(3);
  const int n = 24;
  const int d = 2;
  const HammingGraphProtocol protocol(g, {1, 2, 3}, n, d, 0.3, 2);
  const Bitstring base = Bitstring::random(n, rng);
  const std::vector<Bitstring> inputs{
      base, Bitstring::random_at_distance(base, 1, rng),
      Bitstring::random_at_distance(base, 1, rng)};
  ASSERT_TRUE(protocol.predicate(inputs));
  EXPECT_NEAR(protocol.completeness(inputs), 1.0, 1e-9);
}

TEST(HammingGraphTest, ViolatedPairIsDetected) {
  Rng rng(5);
  const Graph g = Graph::path(2);
  const int n = 16;
  const int d = 1;
  // r = 2 paths: modest repetitions suffice for the Monte-Carlo check.
  const HammingGraphProtocol protocol(g, {0, 2}, n, d, 0.35, 40);
  const Bitstring x = Bitstring::random(n, rng);
  const std::vector<Bitstring> inputs{
      x, Bitstring::random_at_distance(x, d + 6, rng)};
  ASSERT_FALSE(protocol.predicate(inputs));
  const auto est = protocol.best_attack_accept(inputs, rng, 150);
  EXPECT_LE(est.mean - est.half_width_95, 1.0 / 3.0);
}

TEST(ForallFTest, EqInstantiationIsCompleteAndSound) {
  Rng rng(6);
  const Graph g = Graph::star(3);
  const EqOneWayProtocol eq(16, 0.3);
  const ForallFProtocol protocol(g, {1, 2, 3}, eq, 40);
  const Bitstring x = Bitstring::random(16, rng);
  const std::vector<Bitstring> yes(3, x);
  EXPECT_TRUE(protocol.predicate(yes));
  EXPECT_NEAR(protocol.completeness(yes), 1.0, 1e-9);

  std::vector<Bitstring> no = yes;
  no[1] = random_unequal_to(x, rng);
  ASSERT_FALSE(protocol.predicate(no));
  const auto est = protocol.accept_probability(no, protocol.honest_proof(no),
                                               rng, 300);
  // Honest messages on a no instance: some leaf rejects whp across 40 reps.
  EXPECT_LE(est.mean, 0.05);
  const auto attack = protocol.best_attack_accept(no, rng, 300);
  EXPECT_LE(attack.mean - attack.half_width_95, 1.0 / 3.0);
}

TEST(ForallFTest, CostsScaleWithTreesAndDegree) {
  const Graph star = Graph::star(4);
  const EqOneWayProtocol eq(16, 0.3);
  const ForallFProtocol p4(star, {1, 2, 3, 4}, eq, 2);
  const ForallFProtocol p2(star, {1, 2}, eq, 2);
  EXPECT_GT(p4.costs().total_proof_qubits, p2.costs().total_proof_qubits);
}

// --- QMAcc -> dQMA -----------------------------------------------------------

TEST(QmaCcPathTest, EqInstanceCompleteness) {
  Rng rng(7);
  const EqOneWayProtocol eq(12, 64, 0.3, 0x0ddba11);
  const Bitstring x = Bitstring::random(12, rng);
  const auto inst = dqma::comm::eq_as_qma_instance(eq, x, x);
  const QmaCcPathProtocol protocol(inst, 4, 3);
  EXPECT_NEAR(protocol.completeness(), 1.0, 1e-9);
}

TEST(QmaCcPathTest, EqNoInstanceAttackBounded) {
  Rng rng(8);
  const EqOneWayProtocol eq(12, 64, 0.3, 0x0ddba11);
  const auto [x, y] = random_unequal_pair(12, rng);
  const auto inst = dqma::comm::eq_as_qma_instance(eq, x, y);
  const int r = 3;
  const QmaCcPathProtocol protocol(inst, r, 2 * 81 * r * r / 4);
  EXPECT_LE(protocol.best_attack_accept(), 1.0 / 3.0);
}

TEST(QmaCcPathTest, LsdYesInstanceHasHighCompleteness) {
  Rng rng(9);
  const auto lsd = LsdInstance::close_pair(24, 3, 0.05, rng);
  const auto inst = lsd_qma_instance(lsd);
  const QmaCcPathProtocol protocol(inst, 3, 1);
  EXPECT_GE(protocol.completeness(), 0.95);
}

TEST(QmaCcPathTest, LsdNoInstanceAttackBounded) {
  Rng rng(10);
  const auto lsd = LsdInstance::far_pair(24, 3, rng);
  const auto inst = lsd_qma_instance(lsd);
  // Per-repetition soundness is already ~0.05 end-to-end but the chain can
  // hide the discrepancy only at 1 - O(1/r) rate; a handful of repetitions
  // suffices.
  const QmaCcPathProtocol protocol(inst, 3, 40);
  EXPECT_LE(protocol.best_attack_accept(), 1.0 / 3.0);
}

TEST(QmaCcPathTest, CostsMatchAlgorithm10) {
  Rng rng(11);
  const auto lsd = LsdInstance::far_pair(32, 3, rng);
  const auto inst = lsd_qma_instance(lsd);
  const QmaCcPathProtocol protocol(inst, 5, 7);
  const auto c = protocol.costs();
  const long long mu = dqma::comm::qubits_for_dim(inst.message_dim());
  EXPECT_EQ(c.local_message_qubits, 7 * mu);
  EXPECT_EQ(c.total_proof_qubits, 7LL * inst.gamma_qubits + 2 * 7 * mu * 4);
}

TEST(Theorem46Test, CostReportShapes) {
  const auto rep = theorem46_costs(8, 4);
  EXPECT_EQ(rep.qmacc_cost, 16);
  EXPECT_EQ(rep.lsd_ambient_dim, 1LL << 16);
  EXPECT_GT(rep.per_node_proof_qubits, 4 * 4 * 16);
  // Quadratic growth in C at fixed r (up to the log factor).
  const auto rep2 = theorem46_costs(16, 4);
  EXPECT_GT(rep2.per_node_proof_qubits, rep.per_node_proof_qubits);
}

TEST(Theorem46Test, EndToEndPipelineOnEqInstance) {
  // dQMA -> QMA* (cost C) -> LSD -> QMA one-way -> dQMA_sep: exercised on
  // an EQ no-instance. The final protocol must still reject.
  Rng rng(12);
  const EqOneWayProtocol eq(10, 32, 0.3, 0x0ddba11);
  const auto [x, y] = random_unequal_pair(10, rng);
  const auto base = dqma::comm::eq_as_qma_instance(eq, x, y);
  const auto lsd = dqma::comm::lsd_from_qma_instance(base, 0.5);
  const auto final_inst = lsd_qma_instance(lsd);
  const QmaCcPathProtocol protocol(final_inst, 3, 30);
  EXPECT_LE(protocol.best_attack_accept(), 1.0 / 3.0);

  // And the yes side stays complete.
  const auto base_yes = dqma::comm::eq_as_qma_instance(eq, x, x);
  const auto lsd_yes = dqma::comm::lsd_from_qma_instance(base_yes, 0.5);
  const auto yes_inst = lsd_qma_instance(lsd_yes);
  const QmaCcPathProtocol yes_protocol(yes_inst, 3, 1);
  EXPECT_GE(yes_protocol.completeness(), 0.9);
}

}  // namespace

// Tests for the Algorithm 11 reduction (dQMA -> QMA* communication).
#include <gtest/gtest.h>

#include <cmath>

#include "dqma/exact_runner.hpp"
#include "dqma/qma_star.hpp"
#include "linalg/vector.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::protocol::ExactEqPathAnalyzer;
using dqma::protocol::QmaStarInstance;
using dqma::util::Rng;

CVec far_state() {
  return CVec::basis(2, 1);
}

TEST(QmaStarTest, ReductionPreservesWorstCaseAcceptance) {
  // The paper's key observation: the i-th reduction yields a QMA* protocol
  // whose acceptance (for every proof) equals the source protocol's, so
  // worst cases coincide at EVERY cut.
  const CVec a = CVec::basis(2, 0);
  const CVec b = far_state();
  for (int r : {3, 4}) {
    const ExactEqPathAnalyzer analyzer(a, b, r);
    const double source_worst = analyzer.worst_case_accept();
    for (int cut = 0; cut <= r - 1; ++cut) {
      const QmaStarInstance star(analyzer, cut, /*register_qubits=*/5);
      EXPECT_NEAR(star.max_accept(), source_worst, 1e-7)
          << "r=" << r << " cut=" << cut;
    }
  }
}

TEST(QmaStarTest, CostAccountingMatchesTheorem63) {
  // gamma_1 + gamma_2 = total proof qubits; mu = one crossing message.
  const CVec a = CVec::basis(2, 0);
  const ExactEqPathAnalyzer analyzer(a, far_state(), 4);
  const int q = 7;
  for (int cut = 0; cut <= 3; ++cut) {
    const QmaStarInstance star(analyzer, cut, q);
    EXPECT_EQ(star.gamma1_qubits() + star.gamma2_qubits(),
              2LL * 3 * q);  // 2 registers x (r-1) nodes x q qubits
    EXPECT_EQ(star.mu_qubits(), q);
    EXPECT_EQ(star.gamma1_qubits(), 2LL * cut * q);
  }
}

TEST(QmaStarTest, CutSeparableProversAreWeakerButClose) {
  Rng rng(31);
  const CVec a = CVec::basis(2, 0);
  const ExactEqPathAnalyzer analyzer(a, far_state(), 4);
  const QmaStarInstance star(analyzer, /*cut=*/1, 5);
  const double entangled = star.max_accept();
  const double separable = star.max_cut_separable_accept(rng);
  EXPECT_LE(separable, entangled + 1e-7);
  // The gap is small on these instances (consistent with the paper's
  // sep-simulation losing only polynomial factors).
  EXPECT_LE(entangled - separable, 0.2);
}

TEST(QmaStarTest, DegenerateCutsEqualEntangledOptimum) {
  Rng rng(32);
  const CVec a = CVec::basis(2, 0);
  const ExactEqPathAnalyzer analyzer(a, far_state(), 3);
  // cut = 0: Alice holds nothing; cut = r-1: Bob holds nothing.
  for (int cut : {0, 2}) {
    const QmaStarInstance star(analyzer, cut, 5);
    EXPECT_NEAR(star.max_cut_separable_accept(rng), star.max_accept(), 1e-7);
  }
}

TEST(QmaStarTest, RejectsOutOfRangeCut) {
  const CVec a = CVec::basis(2, 0);
  const ExactEqPathAnalyzer analyzer(a, far_state(), 3);
  EXPECT_THROW(QmaStarInstance(analyzer, 5, 5), std::invalid_argument);
}

}  // namespace

// Tests for the deterministic Lanczos eigensolver (linalg/lanczos.hpp):
// agreement with the dense Jacobi eigh at 1e-9, degenerate/rank-deficient
// PSD operators, dimension edges, byte-determinism across the kernel-thread
// axis, matvec-count advantage over power iteration, and the tightened
// power-iteration stop rule on a gap-1e-12 two-cluster spectrum.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dqma/exact_runner.hpp"
#include "linalg/eigen.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/simd.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "sweep/parallel.hpp"

namespace {

using dqma::linalg::CallbackOperator;
using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::linalg::DenseOperator;
using dqma::linalg::SpectralOptions;
using dqma::linalg::SpectralStats;
using dqma::linalg::top_eigenvalue_psd;
using dqma::test::Rng;
using dqma::test::SeededTest;
using Method = SpectralOptions::Method;
namespace simd = dqma::linalg::simd;

SpectralOptions options_for(Method method, int max_iters = 4000,
                            double tol = 1e-10) {
  SpectralOptions opts;
  opts.method = method;
  opts.max_iters = max_iters;
  opts.tol = tol;
  return opts;
}

class LanczosTest : public SeededTest {};

TEST_F(LanczosTest, MatchesEighOnRandomDensities) {
  for (const int dim : {3, 8, 17, 24, 40}) {
    for (int trial = 0; trial < 3; ++trial) {
      const CMat rho = dqma::quantum::random_density(dim, rng());
      const double exact = dqma::linalg::eigh(rho).values.back();
      const DenseOperator op(rho);
      SpectralStats stats;
      const double via_lanczos =
          top_eigenvalue_psd(op, options_for(Method::kLanczos), nullptr, &stats);
      EXPECT_NEAR(via_lanczos, exact, 1e-9) << "dim " << dim;
      EXPECT_TRUE(stats.converged) << "dim " << dim;
      EXPECT_TRUE(stats.used_lanczos);
      // The default entry point agrees too (kAuto routes through Lanczos
      // above the tiny-dim threshold, power below it).
      EXPECT_NEAR(dqma::linalg::max_eigenvalue_psd(rho), exact, 1e-9);
    }
  }
}

TEST_F(LanczosTest, RitzVectorIsAnEigenvector) {
  const CMat rho = dqma::quantum::random_density(32, rng());
  const DenseOperator op(rho);
  CVec vec;
  SpectralStats stats;
  const double theta = top_eigenvalue_psd(op, options_for(Method::kLanczos),
                                          &vec, &stats);
  EXPECT_NEAR(vec.norm(), 1.0, 1e-12);
  const CVec image = op.apply(vec);
  EXPECT_LT(image.linf_distance(vec * Complex{theta, 0.0}), 1e-8);
}

TEST_F(LanczosTest, RankDeficientAndDegenerateOperators) {
  // Rank-3 mixture in a 24-dim space: Lanczos exhausts the (tiny) Krylov
  // space and must still match eigh.
  const auto states = dqma::test::haar_states(24, 3, rng());
  CMat low_rank(24, 24);
  for (const CVec& v : states) {
    CMat term = CMat::projector(v);
    term *= Complex{1.0 / 3.0, 0.0};
    low_rank += term;
  }
  const double exact = dqma::linalg::eigh(low_rank).values.back();
  SpectralStats stats;
  const double via_lanczos = top_eigenvalue_psd(
      DenseOperator(low_rank), options_for(Method::kLanczos), nullptr, &stats);
  EXPECT_NEAR(via_lanczos, exact, 1e-9);
  EXPECT_TRUE(stats.converged);

  // Degenerate top eigenvalue (multiplicity 3).
  const CMat basis = dqma::linalg::eigh(dqma::quantum::random_density(20, rng())).vectors;
  std::vector<Complex> diag(20, Complex{0.25, 0.0});
  diag[0] = diag[7] = diag[13] = Complex{1.0, 0.0};
  const CMat degenerate =
      (basis * CMat::diagonal(diag)).times_adjoint(basis);
  const double via_degenerate = top_eigenvalue_psd(
      DenseOperator(degenerate), options_for(Method::kLanczos));
  EXPECT_NEAR(via_degenerate, 1.0, 1e-9);

  // The zero operator: annihilation converges via Krylov breakdown.
  const CMat zero(16, 16);
  SpectralStats zero_stats;
  const double via_zero = top_eigenvalue_psd(
      DenseOperator(zero), options_for(Method::kLanczos), nullptr, &zero_stats);
  EXPECT_NEAR(via_zero, 0.0, 1e-12);
  EXPECT_TRUE(zero_stats.converged);
}

TEST_F(LanczosTest, DimensionEdges) {
  const CallbackOperator empty([](const CVec& x) { return x; }, 0);
  for (const Method method : {Method::kAuto, Method::kPower, Method::kLanczos}) {
    SpectralStats stats;
    EXPECT_EQ(top_eigenvalue_psd(empty, options_for(method), nullptr, &stats),
              0.0);
    EXPECT_TRUE(stats.converged);
  }
  CMat single(1, 1);
  single(0, 0) = Complex{0.7, 0.0};
  for (const Method method : {Method::kAuto, Method::kPower, Method::kLanczos}) {
    EXPECT_NEAR(top_eigenvalue_psd(DenseOperator(single), options_for(method)),
                0.7, 1e-12);
  }
}

TEST_F(LanczosTest, ByteDeterminismAcrossKernelThreads) {
  const CMat rho = dqma::quantum::random_density(64, rng());
  const std::vector<simd::Level> levels = {
      simd::Level::kScalar, simd::clamp_to_supported(simd::Level::kAvx2)};
  for (const simd::Level level : levels) {
    const simd::LevelScope level_scope(level);
    std::vector<std::vector<double>> runs;
    std::vector<long long> matvecs;
    for (const int threads : {1, 3, 8}) {
      const dqma::sweep::KernelThreadScope thread_scope(threads);
      // The operator packs at construction under the active level; the
      // parallel row panels inside apply() are what the thread axis probes.
      const DenseOperator op(rho);
      CVec vec;
      SpectralStats stats;
      const double theta = top_eigenvalue_psd(
          op, options_for(Method::kLanczos), &vec, &stats);
      std::vector<double> bytes;
      bytes.push_back(theta);
      for (int i = 0; i < vec.dim(); ++i) {
        bytes.push_back(vec[i].real());
        bytes.push_back(vec[i].imag());
      }
      runs.push_back(std::move(bytes));
      matvecs.push_back(stats.matvecs);
    }
    for (std::size_t k = 1; k < runs.size(); ++k) {
      ASSERT_EQ(runs[k].size(), runs[0].size());
      EXPECT_EQ(std::memcmp(runs[k].data(), runs[0].data(),
                            runs[0].size() * sizeof(double)),
                0)
          << "thread-axis byte drift at level " << simd::level_name(level);
      EXPECT_EQ(matvecs[k], matvecs[0]);
    }
  }
}

TEST_F(LanczosTest, MatvecCountsBeatPowerIteration) {
  // Monotonicity on generic dense PSD operators...
  for (const int dim : {32, 64, 128}) {
    const CMat rho = dqma::quantum::random_density(dim, rng());
    const DenseOperator op(rho);
    SpectralStats lanczos_stats;
    SpectralStats power_stats;
    const double via_lanczos = top_eigenvalue_psd(
        op, options_for(Method::kLanczos, 20000, 1e-9), nullptr, &lanczos_stats);
    const double via_power = top_eigenvalue_psd(
        op, options_for(Method::kPower, 20000, 1e-9), nullptr, &power_stats);
    EXPECT_TRUE(lanczos_stats.converged);
    EXPECT_TRUE(power_stats.converged);
    EXPECT_NEAR(via_lanczos, via_power, 1e-9);
    EXPECT_LE(lanczos_stats.matvecs, power_stats.matvecs) << "dim " << dim;
  }
  // ...and the >= 3x advantage on an acceptance operator of the kind the
  // table3_lower benchmarks solve (r = 4 equality path, proof dim 64).
  const CVec hx = dqma::test::reference_haar_state(2, 11);
  const CVec hy = dqma::test::reference_haar_state(2, 12);
  const dqma::protocol::ExactEqPathAnalyzer analyzer(hx, hy, 4);
  SpectralStats lanczos_stats;
  SpectralStats power_stats;
  const double via_lanczos = analyzer.worst_case_accept(
      options_for(Method::kLanczos, 20000, 1e-9), &lanczos_stats);
  const double via_power = analyzer.worst_case_accept(
      options_for(Method::kPower, 20000, 1e-9), &power_stats);
  EXPECT_TRUE(lanczos_stats.converged);
  EXPECT_TRUE(power_stats.converged);
  EXPECT_NEAR(via_lanczos, via_power, 1e-9);
  EXPECT_LE(3 * lanczos_stats.matvecs, power_stats.matvecs);
}

TEST_F(LanczosTest, PowerResidualRuleHandlesTwoClusterSpectrum) {
  // Top cluster {1, 1 - 1e-12} with a 0.999 decoy underneath: the old
  // Rayleigh-delta-only rule could stop while the iterate still carried an
  // O(1e-4) decoy component (eigenvalue error far above 1e-9); the residual
  // check keeps iterating until the decoy is actually gone.
  std::vector<Complex> diag(32, Complex{0.3, 0.0});
  diag[0] = Complex{1.0, 0.0};
  diag[1] = Complex{1.0 - 1e-12, 0.0};
  diag[2] = Complex{0.999, 0.0};
  const CMat basis =
      dqma::linalg::eigh(dqma::quantum::random_density(32, rng())).vectors;
  const CMat two_cluster =
      (basis * CMat::diagonal(diag)).times_adjoint(basis);
  const DenseOperator op(two_cluster);
  SpectralStats power_stats;
  const double via_power = top_eigenvalue_psd(
      op, options_for(Method::kPower, 60000, 1e-10), nullptr, &power_stats);
  EXPECT_TRUE(power_stats.converged);
  EXPECT_NEAR(via_power, 1.0, 1e-9);
  // Lanczos needs orders of magnitude fewer applications on the same input.
  SpectralStats lanczos_stats;
  const double via_lanczos = top_eigenvalue_psd(
      op, options_for(Method::kLanczos, 20000, 1e-10), nullptr, &lanczos_stats);
  EXPECT_TRUE(lanczos_stats.converged);
  EXPECT_NEAR(via_lanczos, 1.0, 1e-9);
  EXPECT_LT(lanczos_stats.matvecs, 100);
  EXPECT_LT(10 * lanczos_stats.matvecs, power_stats.matvecs);
}

TEST_F(LanczosTest, ApplyIntoReusesStorageAndMatchesApply) {
  const CMat rho = dqma::quantum::random_density(40, rng());
  const DenseOperator op(rho);
  const CVec x = dqma::quantum::haar_state(40, rng());
  const CVec via_apply = op.apply(x);
  CVec out;
  op.apply_into(x, out);
  EXPECT_EQ(std::memcmp(&out[0], &via_apply[0], 40 * sizeof(Complex)), 0);
  // Second call reuses `out`'s storage and the operator's input scratch.
  op.apply_into(x, out);
  EXPECT_EQ(std::memcmp(&out[0], &via_apply[0], 40 * sizeof(Complex)), 0);
}

}  // namespace

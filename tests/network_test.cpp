// Tests for graphs, spanning-tree construction (Sec. 3.3) and the Lemma 18
// tree proof-labelling scheme.
#include <gtest/gtest.h>

#include <algorithm>

#include "network/graph.hpp"
#include "network/tree.hpp"
#include "util/rng.hpp"

namespace {

using dqma::network::Graph;
using dqma::network::honest_tree_labels;
using dqma::network::SpanningTree;
using dqma::network::TreeLabel;
using dqma::network::verify_tree_labels;
using dqma::util::Rng;

TEST(GraphTest, PathBasics) {
  const Graph g = Graph::path(5);
  EXPECT_EQ(g.node_count(), 6);
  EXPECT_EQ(g.edge_count(), 5);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 5);
  // Radius of a path of even node count: ceil(5/2) = 3.
  EXPECT_EQ(g.radius(), 3);
}

TEST(GraphTest, StarBasics) {
  const Graph g = Graph::star(7);
  EXPECT_EQ(g.node_count(), 8);
  EXPECT_EQ(g.radius(), 1);
  EXPECT_EQ(g.diameter(), 2);
  EXPECT_EQ(g.center(), 0);
  EXPECT_EQ(g.max_degree(), 7);
}

TEST(GraphTest, AddEdgeIsIdempotentAndRejectsLoops) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphTest, BfsDistancesOnCycle) {
  const Graph g = Graph::cycle(6);
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[5], 1);
}

TEST(GraphTest, ShortestPathEndpointsAndLength) {
  const Graph g = Graph::cycle(8);
  const auto path = g.shortest_path(1, 5);
  EXPECT_EQ(path.front(), 1);
  EXPECT_EQ(path.back(), 5);
  EXPECT_EQ(static_cast<int>(path.size()) - 1, 4);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i - 1], path[i]));
  }
}

TEST(GraphTest, RandomTreeIsConnectedTree) {
  Rng rng(1);
  for (int n : {2, 10, 50}) {
    const Graph g = Graph::random_tree(n, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.edge_count(), n - 1);
  }
}

TEST(GraphTest, BalancedTreeShape) {
  const Graph g = Graph::balanced_tree(2, 3);
  EXPECT_EQ(g.node_count(), 15);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.edge_count(), 14);
}

TEST(SpanningTreeTest, PathWithTwoTerminalsIsThePath) {
  const Graph g = Graph::path(4);
  const SpanningTree tree = SpanningTree::build(g, {0, 4});
  // All 5 path nodes survive pruning; both terminals are leaves or root.
  EXPECT_EQ(tree.size(), 5);
  EXPECT_EQ(tree.depth(), 4);
  const auto leaves = tree.leaves();
  EXPECT_EQ(leaves.size(), 1u);  // root is terminal 0 or 4; other end a leaf
}

TEST(SpanningTreeTest, RootIsMostCentralTerminal) {
  // Path 0-1-2-3-4-5-6 with terminals {0, 3, 6}: terminal 3 minimizes the
  // max distance to other terminals.
  const Graph g = Graph::path(6);
  const SpanningTree tree = SpanningTree::build(g, {0, 3, 6});
  EXPECT_EQ(tree.node(tree.root()).original, 3);
}

TEST(SpanningTreeTest, PrunesBranchesWithoutTerminals) {
  // Star with 6 leaves, terminals at leaves 1 and 2 only.
  const Graph g = Graph::star(6);
  const SpanningTree tree = SpanningTree::build(g, {1, 2});
  // Surviving nodes: the two terminals and the center (center only if it is
  // on a root-terminal path). Rooted at terminal 1: path 1-0-2.
  EXPECT_EQ(tree.size(), 3);
}

TEST(SpanningTreeTest, InternalTerminalGetsVirtualLeaf) {
  // Path 0-1-2 with all three as terminals, rooted at 1: terminal 1 is the
  // root (keeps input), terminals 0 and 2 are natural leaves: no virtual
  // nodes. Now use terminals {0, 1, 2} on a path 0-1-2-3 with terminal set
  // {0,1,3}: rooted at 1, terminal 0 is a leaf, terminal 3 is a leaf via 2,
  // and no internal non-root terminal exists. Construct a case with an
  // internal terminal: path 0-1-2, terminals {0, 2}, forced root 0: node 2
  // is a leaf; still none. Use terminals {0,1,2} forced root 0: terminal 1
  // is internal -> virtual leaf.
  const Graph g = Graph::path(2);
  const SpanningTree tree = SpanningTree::build(g, {0, 1, 2}, 0);
  int virtual_count = 0;
  for (int i = 0; i < tree.size(); ++i) {
    virtual_count += tree.node(i).is_virtual ? 1 : 0;
  }
  EXPECT_EQ(virtual_count, 1);
  const int leaf = tree.leaf_of_terminal(1);
  EXPECT_TRUE(tree.node(leaf).is_virtual);
  EXPECT_EQ(tree.node(leaf).original, 1);
}

TEST(SpanningTreeTest, DepthAtMostRadiusPlusOne) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = Graph::random_tree(30, rng);
    std::vector<int> terminals;
    for (int t = 0; t < 5; ++t) {
      terminals.push_back(static_cast<int>(rng.next_below(30)));
    }
    std::sort(terminals.begin(), terminals.end());
    terminals.erase(std::unique(terminals.begin(), terminals.end()),
                    terminals.end());
    const SpanningTree tree = SpanningTree::build(g, terminals);
    EXPECT_LE(tree.depth(), g.radius() + g.diameter() + 1);
    // Every terminal is reachable as a leaf or the root.
    for (const int t : terminals) {
      EXPECT_GE(tree.leaf_of_terminal(t), 0);
    }
  }
}

TEST(SpanningTreeTest, PathBetweenIsConnectedInTree) {
  Rng rng(4);
  const Graph g = Graph::random_tree(20, rng);
  const SpanningTree tree = SpanningTree::build(g, {0, 10, 19});
  const int a = tree.leaf_of_terminal(10);
  const int b = tree.leaf_of_terminal(19);
  const auto path = tree.path_between(a, b);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), b);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto& u = tree.node(path[i - 1]);
    const auto& v = tree.node(path[i]);
    EXPECT_TRUE(u.parent == path[i] || v.parent == path[i - 1]);
  }
}

TEST(SpanningTreeTest, PostOrderVisitsChildrenBeforeParents) {
  const Graph g = Graph::balanced_tree(2, 3);
  const SpanningTree tree = SpanningTree::build(g, {7, 8, 14});
  const auto order = tree.post_order();
  std::vector<int> position(static_cast<std::size_t>(tree.size()), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (int v = 0; v < tree.size(); ++v) {
    for (const int c : tree.node(v).children) {
      EXPECT_LT(position[static_cast<std::size_t>(c)],
                position[static_cast<std::size_t>(v)]);
    }
  }
  EXPECT_EQ(order.back(), tree.root());
}

TEST(TreeLabelTest, HonestLabelsAcceptEverywhere) {
  Rng rng(5);
  const Graph g = Graph::random_tree(25, rng);
  const auto labels = honest_tree_labels(g, 7);
  const auto verdict = verify_tree_labels(g, labels);
  for (const bool ok : verdict) {
    EXPECT_TRUE(ok);
  }
}

TEST(TreeLabelTest, FakeParentIsCaught) {
  const Graph g = Graph::path(4);
  auto labels = honest_tree_labels(g, 0);
  labels[3].parent = 1;  // not a neighbor of node 3
  const auto verdict = verify_tree_labels(g, labels);
  EXPECT_FALSE(verdict[3]);
}

TEST(TreeLabelTest, InconsistentDistanceIsCaught) {
  const Graph g = Graph::path(4);
  auto labels = honest_tree_labels(g, 0);
  labels[2].distance = 5;
  const auto verdict = verify_tree_labels(g, labels);
  EXPECT_TRUE(std::any_of(verdict.begin(), verdict.end(),
                          [](bool ok) { return !ok; }));
}

TEST(TreeLabelTest, DisagreeingRootIdsAreCaught) {
  const Graph g = Graph::star(4);
  auto labels = honest_tree_labels(g, 0);
  labels[2].root_id = 2;
  labels[2].parent = 2;
  labels[2].distance = 0;
  const auto verdict = verify_tree_labels(g, labels);
  EXPECT_TRUE(std::any_of(verdict.begin(), verdict.end(),
                          [](bool ok) { return !ok; }));
}

TEST(TreeLabelTest, HonestLabelsRejectRootOutsideGraph) {
  const Graph g = Graph::path(4);  // 5 nodes: 0..4
  EXPECT_THROW(honest_tree_labels(g, -1), std::exception);
  EXPECT_THROW(honest_tree_labels(g, 5), std::exception);
}

TEST(TreeLabelTest, HonestLabelsRejectDisconnectedGraph) {
  Graph g(4);
  g.add_edge(0, 1);  // nodes 2 and 3 are unreachable from the root
  EXPECT_THROW(honest_tree_labels(g, 0), std::exception);
}

TEST(TreeLabelTest, CycleClaimIsCaught) {
  // Labels that describe a "tree" with a cycle (two nodes claiming each
  // other as parent) must be rejected: distances cannot both decrease.
  const Graph g = Graph::cycle(4);
  std::vector<TreeLabel> labels(4);
  for (int v = 0; v < 4; ++v) {
    labels[static_cast<std::size_t>(v)].root_id = 0;
  }
  labels[0] = {0, 0, 0};
  labels[1] = {0, 2, 2};
  labels[2] = {0, 1, 3};  // parent 1 has distance 2, claims 3: consistent...
  labels[3] = {0, 0, 1};
  // ...but node 1's parent (2) must have distance 1, and it claims 3.
  const auto verdict = verify_tree_labels(g, labels);
  EXPECT_TRUE(std::any_of(verdict.begin(), verdict.end(),
                          [](bool ok) { return !ok; }));
}

}  // namespace

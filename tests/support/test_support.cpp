#include "support/test_support.hpp"

#include <cmath>
#include <complex>
#include <sstream>

#include "qtest/swap_test.hpp"
#include "quantum/random.hpp"

namespace dqma::test {

namespace {

std::string complex_to_string(const linalg::Complex& c) {
  std::ostringstream os;
  os << "(" << c.real() << (c.imag() < 0 ? "" : "+") << c.imag() << "i)";
  return os.str();
}

}  // namespace

::testing::AssertionResult StateNearPred(const char* a_expr, const char* b_expr,
                                         const char* tol_expr, const CVec& a,
                                         const CVec& b, double tol) {
  if (a.dim() != b.dim()) {
    return ::testing::AssertionFailure()
           << "dimension mismatch between " << a_expr << " (dim " << a.dim()
           << ") and " << b_expr << " (dim " << b.dim() << ")";
  }
  double worst = 0.0;
  int worst_i = 0;
  for (int i = 0; i < a.dim(); ++i) {
    const double d = std::abs(a[i] - b[i]);
    if (d > worst) {
      worst = d;
      worst_i = i;
    }
  }
  if (worst <= tol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ by " << worst
         << " at index " << worst_i << " ("
         << complex_to_string(a[worst_i]) << " vs "
         << complex_to_string(b[worst_i]) << "), tolerance " << tol_expr
         << " = " << tol;
}

namespace {

::testing::AssertionResult mat_near(const char* a_expr, const char* b_expr,
                                    const char* tol_expr, const CMat& a,
                                    const CMat& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch between " << a_expr << " (" << a.rows() << "x"
           << a.cols() << ") and " << b_expr << " (" << b.rows() << "x"
           << b.cols() << ")";
  }
  double worst = 0.0;
  int worst_r = 0;
  int worst_c = 0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      const double d = std::abs(a(r, c) - b(r, c));
      if (d > worst) {
        worst = d;
        worst_r = r;
        worst_c = c;
      }
    }
  }
  if (worst <= tol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ by " << worst
         << " at entry (" << worst_r << "," << worst_c << ") ("
         << complex_to_string(a(worst_r, worst_c)) << " vs "
         << complex_to_string(b(worst_r, worst_c)) << "), tolerance "
         << tol_expr << " = " << tol;
}

}  // namespace

::testing::AssertionResult DensityNearPred(const char* a_expr,
                                           const char* b_expr,
                                           const char* tol_expr, const CMat& a,
                                           const CMat& b, double tol) {
  return mat_near(a_expr, b_expr, tol_expr, a, b, tol);
}

::testing::AssertionResult DensityNearPred(const char* a_expr,
                                           const char* b_expr,
                                           const char* tol_expr,
                                           const quantum::Density& a,
                                           const quantum::Density& b,
                                           double tol) {
  return mat_near(a_expr, b_expr, tol_expr, a.matrix(), b.matrix(), tol);
}

::testing::AssertionResult NormalizedPred(const char* v_expr,
                                          const char* tol_expr, const CVec& v,
                                          double tol) {
  const double n = v.norm();
  if (std::abs(n - 1.0) <= tol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << v_expr << " has norm " << n << ", expected 1 within " << tol_expr
         << " = " << tol;
}

::testing::AssertionResult ProbabilityPred(const char* p_expr, double p) {
  if (p >= -util::kAlgebraTol && p <= 1.0 + util::kAlgebraTol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << p_expr << " = " << p << " is not a probability";
}

std::pair<Bitstring, Bitstring> random_unequal_pair(int n, Rng& rng) {
  const Bitstring x = Bitstring::random(n, rng);
  return {x, random_unequal_to(x, rng)};
}

Bitstring random_unequal_to(const Bitstring& x, Rng& rng) {
  const int n = x.size();
  Bitstring y = Bitstring::random(n, rng);
  if (x == y) {
    y.flip(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  return y;
}

std::vector<CVec> haar_states(int dim, int count, Rng& rng) {
  std::vector<CVec> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(quantum::haar_state(dim, rng));
  }
  return out;
}

std::function<double(const CVec&, const CVec&)> swap_pair_test() {
  return [](const CVec& a, const CVec& b) {
    return qtest::swap_test_accept(a, b);
  };
}

std::function<double(const CVec&)> overlap_final_test(CVec target) {
  return [target = std::move(target)](const CVec& v) {
    const double amp = std::abs(target.dot(v));
    return amp * amp;
  };
}

double chain_swap_overlap_accept(const CVec& source, const CVec& target,
                                 const protocol::PathProof& proof) {
  return protocol::chain_accept(source, proof, swap_pair_test(),
                                overlap_final_test(target));
}

protocol::PathProof uniform_proof(const CVec& psi, int intermediates) {
  protocol::PathProof proof;
  proof.reg0.assign(static_cast<std::size_t>(intermediates), psi);
  proof.reg1 = proof.reg0;
  return proof;
}

double exact_worst_case_accept(const CVec& hx, const CVec& hy, int r) {
  const protocol::ExactEqPathAnalyzer analyzer(hx, hy, r);
  return analyzer.worst_case_accept();
}

double exact_best_product_accept(const CVec& hx, const CVec& hy, int r,
                                 int restarts) {
  const protocol::ExactEqPathAnalyzer analyzer(hx, hy, r);
  Rng rng(kTestSeed);
  return analyzer.best_product_accept(rng, restarts);
}

std::vector<std::uint64_t> reference_stream(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(rng.next_u64());
  }
  return out;
}

CVec reference_haar_state(int dim, std::uint64_t seed) {
  Rng rng(seed);
  return quantum::haar_state(dim, rng);
}

}  // namespace dqma::test

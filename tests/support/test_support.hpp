// Shared test-support layer for the dqma GoogleTest suites.
//
// Centralizes what every suite used to re-implement locally:
//  * seeded-RNG fixtures (bit-for-bit reproducible across runs and
//    translation units, per DESIGN.md Sec. 5);
//  * state / density comparison matchers whose default tolerances come
//    from src/util/tolerance.hpp instead of per-test literals;
//  * protocol-run harness helpers wrapping the chain DP engine
//    (dqma/runner.hpp) and the exact acceptance-operator engine
//    (dqma/exact_runner.hpp).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "dqma/exact_runner.hpp"
#include "dqma/model.hpp"
#include "dqma/runner.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "quantum/density.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"
#include "util/tolerance.hpp"

namespace dqma::test {

using linalg::CMat;
using linalg::CVec;
using util::Bitstring;
using util::Rng;

/// Default seed of SeededTest fixtures. Every fixture-based test draws from
/// the same deterministic stream unless it reseeds explicitly.
inline constexpr std::uint64_t kTestSeed = 0x5eed0d09a0ULL;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// Base fixture owning a deterministically seeded Rng. Use `rng()` for the
/// shared stream or `fresh_rng(k)` for an independent stream keyed by k.
class SeededTest : public ::testing::Test {
 protected:
  Rng& rng() { return rng_; }

  /// Independent generator for test-local substreams; the same k always
  /// yields the same stream.
  static Rng fresh_rng(std::uint64_t k) { return Rng(kTestSeed ^ k); }

 private:
  Rng rng_{kTestSeed};
};

// ---------------------------------------------------------------------------
// Comparison matchers (predicate-formatters; use via the macros below)
// ---------------------------------------------------------------------------

/// Element-wise comparison of two state vectors: max_i |a_i - b_i| <= tol.
::testing::AssertionResult StateNearPred(const char* a_expr, const char* b_expr,
                                         const char* tol_expr, const CVec& a,
                                         const CVec& b, double tol);

/// Element-wise comparison of two operators / density matrices.
::testing::AssertionResult DensityNearPred(const char* a_expr,
                                           const char* b_expr,
                                           const char* tol_expr, const CMat& a,
                                           const CMat& b, double tol);
::testing::AssertionResult DensityNearPred(const char* a_expr,
                                           const char* b_expr,
                                           const char* tol_expr,
                                           const quantum::Density& a,
                                           const quantum::Density& b,
                                           double tol);

/// ||v|| == 1 within tol.
::testing::AssertionResult NormalizedPred(const char* v_expr,
                                          const char* tol_expr, const CVec& v,
                                          double tol);

/// p in [0 - tol, 1 + tol].
::testing::AssertionResult ProbabilityPred(const char* p_expr, double p);

}  // namespace dqma::test

/// State comparison at an explicit tolerance.
#define EXPECT_STATE_NEAR_TOL(a, b, tol) \
  EXPECT_PRED_FORMAT3(::dqma::test::StateNearPred, a, b, tol)
/// State comparison at the library-wide algebraic tolerance.
#define EXPECT_STATE_NEAR(a, b) \
  EXPECT_STATE_NEAR_TOL(a, b, ::dqma::util::kAlgebraTol)

/// Density / operator comparison at an explicit tolerance.
#define EXPECT_DENSITY_NEAR_TOL(a, b, tol) \
  EXPECT_PRED_FORMAT3(::dqma::test::DensityNearPred, a, b, tol)
/// Density / operator comparison at the spectral tolerance (eigensolver
/// outputs accumulate O(dim) rounding).
#define EXPECT_DENSITY_NEAR(a, b) \
  EXPECT_DENSITY_NEAR_TOL(a, b, ::dqma::util::kSpectralTol)

/// Unit-norm check at the algebraic tolerance.
#define EXPECT_NORMALIZED(v) \
  EXPECT_PRED_FORMAT2(::dqma::test::NormalizedPred, v, ::dqma::util::kAlgebraTol)

/// Probability-range check (p in [0, 1] up to the algebraic tolerance).
#define EXPECT_PROBABILITY(p) \
  EXPECT_PRED_FORMAT1(::dqma::test::ProbabilityPred, p)

namespace dqma::test {

// ---------------------------------------------------------------------------
// Input generation
// ---------------------------------------------------------------------------

/// Two uniformly random n-bit strings guaranteed distinct (a no-instance of
/// EQ). Replaces the `if (x == y) y.flip(i)` pattern.
std::pair<Bitstring, Bitstring> random_unequal_pair(int n, Rng& rng);

/// A uniformly random bitstring of x's length guaranteed distinct from x.
Bitstring random_unequal_to(const Bitstring& x, Rng& rng);

/// `count` Haar-random states of dimension `dim` from `rng`.
std::vector<CVec> haar_states(int dim, int count, Rng& rng);

// ---------------------------------------------------------------------------
// Protocol-run harness: chain DP engine (dqma/runner.hpp)
// ---------------------------------------------------------------------------

/// The SWAP-test pair test used by every path protocol's intermediate node.
std::function<double(const CVec&, const CVec&)> swap_pair_test();

/// Final test of node v_r: projective overlap with `target` (|<target|v>|^2).
std::function<double(const CVec&)> overlap_final_test(CVec target);

/// One repetition of the symmetrize-and-forward chain with the standard
/// SWAP pair test and overlap final test — the run shape shared by the
/// EQ-path DP cross-validation tests.
double chain_swap_overlap_accept(const CVec& source, const CVec& target,
                                 const protocol::PathProof& proof);

/// A product proof whose every register (both R_{j,0} and R_{j,1} of each
/// of the `intermediates` nodes) is `psi` — the honest-proof shape.
protocol::PathProof uniform_proof(const CVec& psi, int intermediates);

// ---------------------------------------------------------------------------
// Protocol-run harness: exact acceptance-operator engine
// ---------------------------------------------------------------------------

/// Worst-case (entangled-prover) acceptance of one Algorithm 3 repetition
/// with endpoint states hx, hy on a path of length r.
double exact_worst_case_accept(const CVec& hx, const CVec& hy, int r);

/// Best product-prover acceptance found by alternating optimization, with a
/// deterministic internal seed.
double exact_best_product_accept(const CVec& hx, const CVec& hy, int r,
                                 int restarts = 8);

// ---------------------------------------------------------------------------
// Cross-translation-unit determinism reference
// ---------------------------------------------------------------------------

/// The first `count` raw draws of Rng(seed), generated inside the support
/// translation unit. Tests compare these against locally generated streams
/// to pin down that seeding is deterministic across translation units.
std::vector<std::uint64_t> reference_stream(std::uint64_t seed, int count);

/// haar_state(dim, Rng(seed)) generated inside the support translation unit.
CVec reference_haar_state(int dim, std::uint64_t seed);

}  // namespace dqma::test

// Unit tests for the dense linear-algebra layer.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/permanent.hpp"
#include "linalg/vector.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::linalg::eigh;
using dqma::linalg::max_eigenvalue_psd;
using dqma::linalg::permanent;
using dqma::linalg::sqrt_psd;
using dqma::linalg::trace_norm;
using dqma::util::Rng;

TEST(CVecTest, BasisAndNorm) {
  const CVec e1 = CVec::basis(4, 1);
  EXPECT_EQ(e1.dim(), 4);
  EXPECT_DOUBLE_EQ(e1.norm(), 1.0);
  EXPECT_EQ(e1[1], (Complex{1.0, 0.0}));
  EXPECT_EQ(e1[0], (Complex{0.0, 0.0}));
}

TEST(CVecTest, DotIsConjugateLinearInFirstArgument) {
  CVec a(2);
  a[0] = Complex{0.0, 1.0};  // i
  CVec b(2);
  b[0] = Complex{1.0, 0.0};
  // <ia|b> = conj(i) * 1 = -i.
  EXPECT_NEAR(std::abs(a.dot(b) - Complex{0.0, -1.0}), 0.0, 1e-12);
}

TEST(CVecTest, TensorProductDimensionsAndValues) {
  const CVec a = CVec::basis(2, 1);
  const CVec b = CVec::basis(3, 2);
  const CVec t = a.tensor(b);
  EXPECT_EQ(t.dim(), 6);
  EXPECT_EQ(t[1 * 3 + 2], (Complex{1.0, 0.0}));
}

TEST(CVecTest, NormalizeThrowsOnZeroVector) {
  CVec z(3);
  EXPECT_THROW(z.normalize(), std::invalid_argument);
}

TEST(CMatTest, IdentityAndTrace) {
  const CMat id = CMat::identity(5);
  EXPECT_NEAR(std::abs(id.trace() - Complex{5.0, 0.0}), 0.0, 1e-12);
}

TEST(CMatTest, MatrixProductAgainstHandComputation) {
  CMat a(2, 2);
  a(0, 0) = Complex{1.0, 0.0};
  a(0, 1) = Complex{2.0, 0.0};
  a(1, 0) = Complex{3.0, 0.0};
  a(1, 1) = Complex{4.0, 0.0};
  const CMat b = a * a;
  EXPECT_NEAR(b(0, 0).real(), 7.0, 1e-12);
  EXPECT_NEAR(b(0, 1).real(), 10.0, 1e-12);
  EXPECT_NEAR(b(1, 0).real(), 15.0, 1e-12);
  EXPECT_NEAR(b(1, 1).real(), 22.0, 1e-12);
}

TEST(CMatTest, KronMatchesManualBlocks) {
  CMat a(2, 2);
  a(0, 0) = Complex{1.0, 0.0};
  a(1, 1) = Complex{2.0, 0.0};
  const CMat k = a.kron(CMat::identity(3));
  EXPECT_EQ(k.rows(), 6);
  EXPECT_NEAR(k(0, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(k(5, 5).real(), 2.0, 1e-12);
  EXPECT_NEAR(std::abs(k(0, 5)), 0.0, 1e-12);
}

TEST(CMatTest, AdjointConjugatesAndTransposes) {
  CMat a(2, 3);
  a(0, 2) = Complex{1.0, 2.0};
  const CMat ad = a.adjoint();
  EXPECT_EQ(ad.rows(), 3);
  EXPECT_EQ(ad.cols(), 2);
  EXPECT_NEAR(std::abs(ad(2, 0) - Complex{1.0, -2.0}), 0.0, 1e-12);
}

TEST(EigenTest, PauliXHasPlusMinusOne) {
  CMat x(2, 2);
  x(0, 1) = Complex{1.0, 0.0};
  x(1, 0) = Complex{1.0, 0.0};
  const auto es = eigh(x);
  ASSERT_EQ(es.values.size(), 2u);
  EXPECT_NEAR(es.values[0], -1.0, 1e-9);
  EXPECT_NEAR(es.values[1], 1.0, 1e-9);
}

TEST(EigenTest, ComplexHermitianKnownSpectrum) {
  // [[2, i],[-i, 2]] has eigenvalues 1 and 3.
  CMat a(2, 2);
  a(0, 0) = Complex{2.0, 0.0};
  a(0, 1) = Complex{0.0, 1.0};
  a(1, 0) = Complex{0.0, -1.0};
  a(1, 1) = Complex{2.0, 0.0};
  const auto es = eigh(a);
  EXPECT_NEAR(es.values[0], 1.0, 1e-9);
  EXPECT_NEAR(es.values[1], 3.0, 1e-9);
}

TEST(EigenTest, ReconstructionPropertyOnRandomHermitian) {
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 6 + trial;
    CMat a(n, n);
    for (int i = 0; i < n; ++i) {
      a(i, i) = Complex{rng.next_gaussian(), 0.0};
      for (int j = i + 1; j < n; ++j) {
        a(i, j) = Complex{rng.next_gaussian(), rng.next_gaussian()};
        a(j, i) = std::conj(a(i, j));
      }
    }
    const auto es = eigh(a);
    CMat lambda(n, n);
    for (int i = 0; i < n; ++i) {
      lambda(i, i) = Complex{es.values[static_cast<std::size_t>(i)], 0.0};
    }
    const CMat rebuilt = es.vectors * lambda * es.vectors.adjoint();
    EXPECT_DENSITY_NEAR_TOL(rebuilt, a, 1e-8);
    EXPECT_TRUE(es.vectors.is_unitary(1e-8));
  }
}

TEST(EigenTest, EigenvaluesAreSortedAscending) {
  Rng rng(7);
  const CMat rho = dqma::quantum::random_density(8, rng);
  const auto es = eigh(rho);
  for (std::size_t i = 1; i < es.values.size(); ++i) {
    EXPECT_LE(es.values[i - 1], es.values[i] + 1e-12);
  }
}

TEST(EigenTest, PowerIterationMatchesEigh) {
  Rng rng(123);
  for (int trial = 0; trial < 4; ++trial) {
    const CMat rho = dqma::quantum::random_density(10, rng);
    const auto es = eigh(rho);
    const double top = max_eigenvalue_psd(rho);
    EXPECT_NEAR(top, es.values.back(), 1e-7);
  }
}

TEST(EigenTest, SqrtPsdSquaresBack) {
  Rng rng(5);
  const CMat rho = dqma::quantum::random_density(6, rng);
  const CMat root = sqrt_psd(rho);
  EXPECT_DENSITY_NEAR_TOL(root * root, rho, 1e-8);
}

TEST(EigenTest, TraceNormOfHermitianIsSumAbsEigenvalues) {
  CMat z(2, 2);
  z(0, 0) = Complex{1.0, 0.0};
  z(1, 1) = Complex{-1.0, 0.0};
  EXPECT_NEAR(trace_norm(z), 2.0, 1e-9);
}

TEST(EigenTest, TraceNormOfDensityDifferenceIsAtMostTwo) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const CMat a = dqma::quantum::random_density(7, rng);
    const CMat b = dqma::quantum::random_density(7, rng);
    const double tn = trace_norm(a - b);
    EXPECT_GE(tn, -1e-12);
    EXPECT_LE(tn, 2.0 + 1e-9);
  }
}

TEST(PermanentTest, IdentityIsOne) {
  EXPECT_NEAR(permanent(CMat::identity(5)).real(), 1.0, 1e-9);
}

TEST(PermanentTest, AllOnesIsFactorial) {
  CMat ones(4, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      ones(i, j) = Complex{1.0, 0.0};
    }
  }
  EXPECT_NEAR(permanent(ones).real(), 24.0, 1e-9);
}

TEST(PermanentTest, TwoByTwoFormula) {
  CMat a(2, 2);
  a(0, 0) = Complex{1.0, 1.0};
  a(0, 1) = Complex{2.0, 0.0};
  a(1, 0) = Complex{0.0, 3.0};
  a(1, 1) = Complex{4.0, 0.0};
  // perm = a00*a11 + a01*a10 = (1+i)*4 + 2*3i = 4 + 4i + 6i = 4 + 10i.
  const Complex p = permanent(a);
  EXPECT_NEAR(p.real(), 4.0, 1e-9);
  EXPECT_NEAR(p.imag(), 10.0, 1e-9);
}

TEST(PermanentTest, PermutationMatrixIsOne) {
  CMat p(3, 3);
  p(0, 1) = Complex{1.0, 0.0};
  p(1, 2) = Complex{1.0, 0.0};
  p(2, 0) = Complex{1.0, 0.0};
  EXPECT_NEAR(permanent(p).real(), 1.0, 1e-9);
}

TEST(PermanentTest, EmptyMatrixIsOne) {
  EXPECT_NEAR(permanent(CMat(0, 0)).real(), 1.0, 1e-12);
}

}  // namespace

// Parameterized property suites: invariants that must hold across sweeps of
// protocol and primitive parameters (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>

#include "dqma/attacks.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/exact_runner.hpp"
#include "dqma/gt.hpp"
#include "qtest/permutation_test.hpp"
#include "qtest/swap_test.hpp"
#include "quantum/distance.hpp"
#include "quantum/partial_trace.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::protocol::EqPathProtocol;
using dqma::protocol::ExactEqPathAnalyzer;
using dqma::protocol::gt_predicate;
using dqma::protocol::GtProtocol;
using dqma::protocol::GtVariant;
using dqma::protocol::PathProof;
using dqma::protocol::rotation_attack;
using dqma::test::haar_states;
using dqma::util::Bitstring;
using dqma::util::Rng;

// ---------------------------------------------------------------------------
// Exact-engine certification sweep: for every endpoint overlap delta and
// path length r, the exact worst case over all proofs dominates the best
// product proof, which dominates the rotation attack; all are bounded by
// the paper's Lemma 17 soundness whenever delta^2 <= 1/3.
class ExactCertification
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ExactCertification, AttackHierarchyAndSoundnessBound) {
  const auto [delta, r] = GetParam();
  Rng rng(77);
  CVec a = CVec::basis(2, 0);
  CVec b(2);
  b[0] = Complex{delta, 0.0};
  b[1] = Complex{std::sqrt(1.0 - delta * delta), 0.0};
  const ExactEqPathAnalyzer exact(a, b, r);

  const double worst = exact.worst_case_accept();
  const double product = exact.best_product_accept(rng, 6, 50);
  // Rotation attack as explicit product registers.
  const auto rot = rotation_attack(a, b, r - 1);
  std::vector<CVec> regs;
  for (int j = 0; j < r - 1; ++j) {
    regs.push_back(rot.reg0[static_cast<std::size_t>(j)]);
    regs.push_back(rot.reg1[static_cast<std::size_t>(j)]);
  }
  const double rotation = exact.product_accept(regs);

  EXPECT_LE(rotation, product + 1e-6);
  EXPECT_LE(product, worst + 1e-7);
  EXPECT_LE(worst, 1.0 + 1e-9);
  // Lemma 17: the final POVM rejects the far state with probability
  // 1 - delta^2 >= 2/3, so acceptance <= 1 - 4/(81 r^2).
  if (delta * delta <= 1.0 / 3.0) {
    EXPECT_LE(worst, 1.0 - 4.0 / (81.0 * r * r) + 1e-9)
        << "delta=" << delta << " r=" << r;
  }
  // The rotation attack is within a modest gap of the true product optimum
  // (at r = 2 the step attack beats it: one SWAP test, accept 1/2); the
  // protocols' best_attack_accept searches both families.
  EXPECT_GE(rotation, product - 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactCertification,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5),
                       ::testing::Values(2, 3, 4)));

// ---------------------------------------------------------------------------
// Random product proofs never exceed probability bounds, and the honest
// proof is optimal on yes instances.
class EqPathInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EqPathInvariants, RandomProofsAreValidAndSuboptimal) {
  const auto [r, reps] = GetParam();
  Rng rng(101);
  const int n = 12;
  const EqPathProtocol protocol(n, r, 0.3, reps);
  const Bitstring x = Bitstring::random(n, rng);
  const int dim = protocol.scheme().dim();
  for (int trial = 0; trial < 5; ++trial) {
    dqma::protocol::PathProofReps proof;
    for (int k = 0; k < reps; ++k) {
      PathProof one;
      one.reg0 = haar_states(dim, r - 1, rng);
      one.reg1 = haar_states(dim, r - 1, rng);
      proof.push_back(std::move(one));
    }
    const double accept = protocol.accept_probability(x, x, proof);
    EXPECT_PROBABILITY(accept);
    // The honest proof is optimal on the yes instance.
    EXPECT_LE(accept, protocol.completeness(x) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EqPathInvariants,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(1, 3)));

// ---------------------------------------------------------------------------
// GT variant duality: GT<(x, y) <-> GT>(y, x), GT<= <-> GT>=.
class GtDuality : public ::testing::TestWithParam<int> {};

TEST_P(GtDuality, PredicateAndProtocolDuality) {
  const int n = GetParam();
  Rng rng(202);
  for (int trial = 0; trial < 20; ++trial) {
    const Bitstring x = Bitstring::random(n, rng);
    const Bitstring y = Bitstring::random(n, rng);
    EXPECT_EQ(gt_predicate(GtVariant::kLess, x, y),
              gt_predicate(GtVariant::kGreater, y, x));
    EXPECT_EQ(gt_predicate(GtVariant::kLeq, x, y),
              gt_predicate(GtVariant::kGeq, y, x));
    EXPECT_EQ(gt_predicate(GtVariant::kGeq, x, y),
              !gt_predicate(GtVariant::kLess, x, y));
  }
  // Protocol-level: both dual variants have perfect completeness on the
  // same instance.
  const Bitstring lo = Bitstring::from_integer(3, n);
  const Bitstring hi = Bitstring::from_integer((1ULL << (n - 1)) + 2, n);
  const GtProtocol less(n, 3, 0.3, 2, GtVariant::kLess);
  const GtProtocol greater(n, 3, 0.3, 2, GtVariant::kGreater);
  EXPECT_NEAR(less.completeness(lo, hi), 1.0, 1e-9);
  EXPECT_NEAR(greater.completeness(hi, lo), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, GtDuality, ::testing::Values(8, 12, 20));

// ---------------------------------------------------------------------------
// Permutation test acceptance is permutation-invariant in its inputs and
// monotone under repetition of a deviant factor.
class PermutationInvariance : public ::testing::TestWithParam<int> {};

TEST_P(PermutationInvariance, InputOrderIrrelevant) {
  const int k = GetParam();
  Rng rng(303);
  std::vector<CVec> factors = haar_states(4, k, rng);
  const double base = dqma::qtest::permutation_test_accept(factors);
  for (int shuffle = 0; shuffle < 4; ++shuffle) {
    for (int i = k - 1; i > 0; --i) {
      const int j =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
      std::swap(factors[static_cast<std::size_t>(i)],
                factors[static_cast<std::size_t>(j)]);
    }
    EXPECT_NEAR(dqma::qtest::permutation_test_accept(factors), base, 1e-9);
  }
}

TEST_P(PermutationInvariance, OneDeviantAmongCopies) {
  // k-1 copies of |psi> plus one deviant |phi>: acceptance decreases as the
  // deviant's overlap with |psi> shrinks.
  const int k = GetParam();
  Rng rng(304);
  const CVec psi = dqma::quantum::haar_state(4, rng);
  double prev = 1.1;
  for (const double overlap : {0.9, 0.5, 0.1}) {
    // Build phi with the prescribed overlap.
    CVec perp = dqma::quantum::haar_state(4, rng);
    const Complex coeff = psi.dot(perp);
    for (int i = 0; i < 4; ++i) {
      perp[i] -= coeff * psi[i];
    }
    perp.normalize();
    CVec phi(4);
    for (int i = 0; i < 4; ++i) {
      phi[i] = overlap * psi[i] +
               std::sqrt(1.0 - overlap * overlap) * perp[i];
    }
    std::vector<CVec> factors(static_cast<std::size_t>(k - 1), psi);
    factors.push_back(phi);
    const double accept = dqma::qtest::permutation_test_accept(factors);
    EXPECT_LT(accept, prev);
    prev = accept;
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, PermutationInvariance,
                         ::testing::Values(2, 3, 5, 8));

// ---------------------------------------------------------------------------
// Data-processing property sweep: partial trace never increases trace
// distance (Fact 4 specialized to tracing out), across register layouts.
class DataProcessing : public ::testing::TestWithParam<int> {};

TEST_P(DataProcessing, PartialTraceIsContractive) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  using dqma::quantum::Density;
  using dqma::quantum::PureState;
  using dqma::quantum::reduce_to;
  using dqma::quantum::RegisterShape;
  const RegisterShape shape({2, 3, 2});
  const PureState psi(shape, dqma::quantum::haar_state(12, rng));
  const PureState phi(shape, dqma::quantum::haar_state(12, rng));
  const Density rho = Density::from_pure(psi);
  const Density sigma = Density::from_pure(phi);
  const double full = trace_distance(rho, sigma);
  for (const std::vector<int>& kept :
       {std::vector<int>{0}, std::vector<int>{1}, std::vector<int>{0, 2}}) {
    const double reduced =
        trace_distance(reduce_to(rho, kept), reduce_to(sigma, kept));
    EXPECT_LE(reduced, full + 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataProcessing,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace

// Cross-validation of the three protocol engines (circuit-level Monte-
// Carlo vs coin-DP closed form vs acceptance operator) and the noise
// robustness model.
#include <gtest/gtest.h>

#include <cmath>

#include "dqma/attacks.hpp"
#include "dqma/circuit_sim.hpp"
#include "dqma/eq_path.hpp"
#include "dqma/exact_runner.hpp"
#include "dqma/noise.hpp"
#include "dqma/runner.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::CVec;
using dqma::protocol::circuit_eq_path_accept;
using dqma::protocol::EqPathProtocol;
using dqma::protocol::NoiseModel;
using dqma::protocol::noise_threshold;
using dqma::protocol::noisy_attack_accept;
using dqma::protocol::noisy_completeness;
using dqma::protocol::PathProof;
using dqma::protocol::rotation_attack;
using dqma::test::chain_swap_overlap_accept;
using dqma::test::haar_states;
using dqma::test::random_unequal_pair;
using dqma::test::uniform_proof;
using dqma::util::Bitstring;
using dqma::util::Rng;

TEST(CircuitSimTest, HonestRunAcceptsAlways) {
  Rng rng(1);
  const CVec psi = dqma::quantum::haar_state(4, rng);
  const auto est =
      circuit_eq_path_accept(psi, psi, uniform_proof(psi, 3), rng, 300);
  EXPECT_DOUBLE_EQ(est.mean, 1.0);
}

TEST(CircuitSimTest, MatchesChainDpOnRandomProducts) {
  // The independent circuit-level implementation agrees with the closed-
  // form DP within Monte-Carlo error on arbitrary product proofs.
  Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    const CVec source = dqma::quantum::haar_state(4, rng);
    const CVec target = dqma::quantum::haar_state(4, rng);
    PathProof proof;
    const int inner = 2 + trial % 2;
    proof.reg0 = haar_states(4, inner, rng);
    proof.reg1 = haar_states(4, inner, rng);
    const double exact = chain_swap_overlap_accept(source, target, proof);
    const auto est = circuit_eq_path_accept(source, target, proof, rng, 4000);
    EXPECT_NEAR(est.mean, exact, 4.0 * est.half_width_95 + 0.01)
        << "trial " << trial;
  }
}

TEST(CircuitSimTest, MatchesExactEngineOnRotationAttack) {
  Rng rng(3);
  const CVec a = CVec::basis(3, 0);
  const CVec b = CVec::basis(3, 1);
  const int r = 3;
  const auto attack = rotation_attack(a, b, r - 1);
  const double dp = chain_swap_overlap_accept(a, b, attack);
  // Exact engine.
  const dqma::protocol::ExactEqPathAnalyzer exact(a, b, r);
  std::vector<CVec> regs;
  for (int j = 0; j < r - 1; ++j) {
    regs.push_back(attack.reg0[static_cast<std::size_t>(j)]);
    regs.push_back(attack.reg1[static_cast<std::size_t>(j)]);
  }
  EXPECT_NEAR(dp, exact.product_accept(regs), 1e-9);
  // Circuit.
  const auto est = circuit_eq_path_accept(a, b, attack, rng, 4000);
  EXPECT_NEAR(est.mean, dp, 4.0 * est.half_width_95 + 0.01);
}

TEST(CircuitSimTest, BatchedReplaysStateVectorDrawSequence) {
  // The batched path precomputes the coin-conditioned closed-form test
  // probabilities but draws in the identical order; from the same seed both
  // strategies therefore walk the same sample paths, and the means agree to
  // numerical noise of the per-test probabilities (the probability of a
  // uniform draw landing inside that window is ~1e-13 per draw).
  using dqma::protocol::CircuitMcStrategy;
  Rng rng(5);
  for (int trial = 0; trial < 3; ++trial) {
    const CVec source = dqma::quantum::haar_state(5, rng);
    const CVec target = dqma::quantum::haar_state(5, rng);
    PathProof proof;
    proof.reg0 = haar_states(5, 3, rng);
    proof.reg1 = haar_states(5, 3, rng);
    Rng rng_sv(1000 + trial);
    Rng rng_batched(1000 + trial);
    const auto sv = circuit_eq_path_accept(source, target, proof, rng_sv,
                                           2000, CircuitMcStrategy::kStateVector);
    const auto batched = circuit_eq_path_accept(
        source, target, proof, rng_batched, 2000, CircuitMcStrategy::kBatched);
    EXPECT_NEAR(sv.mean, batched.mean, 1e-9) << "trial " << trial;
    EXPECT_NEAR(sv.half_width_95, batched.half_width_95, 1e-9);
    // Both consumed the same number of draws: the streams stay in lockstep.
    EXPECT_EQ(rng_sv.next_u64(), rng_batched.next_u64());
  }
}

TEST(CircuitSimTest, BatchedHonestRunAcceptsAlways) {
  Rng rng(6);
  const CVec psi = dqma::quantum::haar_state(4, rng);
  const auto est = circuit_eq_path_accept(
      psi, psi, uniform_proof(psi, 3), rng, 300,
      dqma::protocol::CircuitMcStrategy::kBatched);
  EXPECT_DOUBLE_EQ(est.mean, 1.0);
}

// --- noise robustness ---------------------------------------------------------

TEST(NoiseTest, ZeroNoiseMatchesNoiselessProtocol) {
  Rng rng(4);
  const EqPathProtocol protocol(12, 4, 0.3, 10);
  const auto [x, y] = random_unequal_pair(12, rng);
  EXPECT_NEAR(noisy_completeness(protocol, x, NoiseModel()),
              protocol.completeness(x), 1e-12);
  EXPECT_NEAR(noisy_attack_accept(protocol, x, y, NoiseModel::uniform(0.0)),
              protocol.best_attack_accept(x, y), 1e-9);
}

TEST(NoiseTest, CompletenessDecaysMonotonically) {
  Rng rng(5);
  const EqPathProtocol protocol(12, 4, 0.3, 20);
  const Bitstring x = Bitstring::random(12, rng);
  double prev = 1.0;
  for (const double p : {0.0, 0.001, 0.01, 0.1, 0.5}) {
    const double c = noisy_completeness(protocol, x, NoiseModel::uniform(p));
    EXPECT_LE(c, prev + 1e-12);
    prev = c;
  }
  // Full depolarization: every test is essentially a coin flip.
  EXPECT_LT(noisy_completeness(protocol, x, NoiseModel::uniform(1.0)), 1e-3);
}

TEST(NoiseTest, CompletenessClosedFormAtHonestProof) {
  // Honest proof: every SWAP test has swap(a,b) = 1, so its noisy value is
  // (1-p) + p (1/2 + 1/2d); the final projector gives (1-p) + p/d.
  Rng rng(6);
  const int r = 5;
  const int reps = 3;
  const EqPathProtocol protocol(12, r, 0.3, reps);
  const Bitstring x = Bitstring::random(12, rng);
  const double p = 0.07;
  const double d = protocol.scheme().dim();
  const double per_swap = (1.0 - p) + p * (0.5 + 0.5 / d);
  const double per_final = (1.0 - p) + p / d;
  const double expected =
      std::pow(std::pow(per_swap, r - 1) * per_final, reps);
  EXPECT_NEAR(noisy_completeness(protocol, x, NoiseModel::uniform(p)),
              expected, 1e-9);
}

TEST(NoiseTest, NoiseDampsTheAttackToo) {
  // Depolarization pulls every test statistic toward its mixed baseline:
  // the rotation attack's near-1 per-test acceptances decay as well, so
  // the soundness side is robust; completeness is the fragile side.
  Rng rng(7);
  const EqPathProtocol protocol(12, 4, 0.3, 20);
  const auto [x, y] = random_unequal_pair(12, rng);
  EXPECT_LT(noisy_attack_accept(protocol, x, y, NoiseModel::uniform(0.3)),
            noisy_attack_accept(protocol, x, y, NoiseModel::uniform(0.0)));
}

TEST(NoiseTest, ThresholdIsPositiveAndBelowBreakdown) {
  Rng rng(8);
  const int r = 4;
  // 64 repetitions: enough for soundness 1/3 at r = 4 (ablation D4) while
  // keeping the completeness decay, and hence the threshold, measurable.
  const EqPathProtocol protocol(12, r, 0.3, 64);
  const auto [x, y] = random_unequal_pair(12, rng);
  const double threshold = noise_threshold(protocol, x, y, 1e-6);
  EXPECT_GT(threshold, 0.0);
  EXPECT_LT(threshold, 0.5);
  // At the threshold the protocol still separates; just above it doesn't.
  EXPECT_GE(noisy_completeness(protocol, x, NoiseModel::uniform(threshold)),
            2.0 / 3.0 - 1e-6);
  EXPECT_LE(noisy_attack_accept(protocol, x, y, NoiseModel::uniform(threshold)),
            1.0 / 3.0 + 1e-6);
}

TEST(NoiseTest, MoreRepetitionsLowerTheNoiseTolerance) {
  // Each repetition multiplies the noisy completeness, so the tolerable
  // per-channel noise shrinks as repetitions grow: the robustness price of
  // the soundness amplification.
  Rng rng(9);
  const auto [x, y] = random_unequal_pair(12, rng);
  const EqPathProtocol few(12, 4, 0.3, 100);
  const EqPathProtocol many(12, 4, 0.3, 1000);
  EXPECT_GT(noise_threshold(few, x, y), noise_threshold(many, x, y));
}

TEST(NoiseTest, PerLinkModelWithEqualRatesMatchesUniform) {
  // A per-link table holding one constant rate is the uniform model: the
  // two evaluations run the identical damped chain DP, so the acceptance
  // values agree bit for bit.
  Rng rng(10);
  const int r = 4;
  const EqPathProtocol protocol(12, r, 0.3, 16);
  const auto [x, y] = random_unequal_pair(12, rng);
  const double p = 0.03;
  const NoiseModel per_link =
      NoiseModel::per_link(std::vector<double>(static_cast<std::size_t>(r), p));
  const NoiseModel uniform = NoiseModel::uniform(p);
  EXPECT_EQ(noisy_completeness(protocol, x, per_link),
            noisy_completeness(protocol, x, uniform));
  EXPECT_EQ(noisy_attack_accept(protocol, x, y, per_link),
            noisy_attack_accept(protocol, x, y, uniform));
}

TEST(NoiseTest, SingleNoisyLinkDampsLessThanAllNoisyLinks) {
  // Heterogeneity matters: noise concentrated on one link hurts the honest
  // prover strictly less than the same rate on every link, and strictly
  // more than no noise at all.
  Rng rng(11);
  const int r = 4;
  const EqPathProtocol protocol(12, r, 0.3, 16);
  const Bitstring x = Bitstring::random(12, rng);
  std::vector<double> rates(static_cast<std::size_t>(r), 0.0);
  rates[1] = 0.2;
  const double one_link =
      noisy_completeness(protocol, x, NoiseModel::per_link(rates));
  const double all_links =
      noisy_completeness(protocol, x, NoiseModel::uniform(0.2));
  const double clean = noisy_completeness(protocol, x, NoiseModel());
  EXPECT_LT(one_link, clean);
  EXPECT_GT(one_link, all_links);
}

TEST(NoiseTest, PerLinkModelValidatesCoverageAndRange) {
  Rng rng(12);
  const EqPathProtocol protocol(12, 4, 0.3, 4);
  const Bitstring x = Bitstring::random(12, rng);
  // Too few links for r = 4 must fail loudly, not read out of range.
  EXPECT_THROW(noisy_completeness(protocol, x,
                                  NoiseModel::per_link({0.1, 0.1})),
               std::exception);
  EXPECT_THROW(NoiseModel::per_link({0.5, 1.5}), std::exception);
  EXPECT_THROW(NoiseModel::uniform(-0.1), std::exception);
}

TEST(NoiseTest, ScaledProfileThresholdMatchesUniformSearch) {
  // noise_threshold's default profile is the unit uniform model, so the
  // returned scale IS the tolerable uniform rate; an explicit heterogeneous
  // profile searches along its own ray instead.
  Rng rng(13);
  const EqPathProtocol protocol(12, 4, 0.3, 64);
  const auto [x, y] = random_unequal_pair(12, rng);
  const double uniform_threshold = noise_threshold(protocol, x, y, 1e-4);
  EXPECT_EQ(uniform_threshold,
            noise_threshold(protocol, x, y, 1e-4, NoiseModel::uniform(1.0)));
  // A profile that only stresses half the links tolerates a larger scale.
  std::vector<double> rates(4, 0.0);
  rates[0] = 1.0;
  rates[1] = 1.0;
  const double half_threshold =
      noise_threshold(protocol, x, y, 1e-4, NoiseModel::per_link(rates));
  EXPECT_GT(half_threshold, uniform_threshold);
}

}  // namespace

// Tests for the SWAP test and the permutation test, including the paper's
// Lemma 13-16 properties.
#include <gtest/gtest.h>

#include <cmath>

#include "qtest/permutation_test.hpp"
#include "qtest/swap_test.hpp"
#include "quantum/distance.hpp"
#include "quantum/partial_trace.hpp"
#include "quantum/unitary.hpp"
#include "quantum/random.hpp"
#include "quantum/state.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::quantum::Density;
using dqma::quantum::haar_state;
using dqma::quantum::PureState;
using dqma::quantum::reduce_to;
using dqma::quantum::RegisterShape;
using dqma::quantum::trace_distance;
using dqma::util::Rng;
namespace qtest = dqma::qtest;

TEST(SwapTest, IdenticalStatesAcceptWithCertainty) {
  Rng rng(1);
  const CVec psi = haar_state(5, rng);
  EXPECT_NEAR(qtest::swap_test_accept(psi, psi), 1.0, 1e-12);
}

TEST(SwapTest, OrthogonalStatesAcceptWithHalf) {
  const CVec a = CVec::basis(4, 0);
  const CVec b = CVec::basis(4, 3);
  EXPECT_NEAR(qtest::swap_test_accept(a, b), 0.5, 1e-12);
}

TEST(SwapTest, ClosedFormMatchesPovmOnProducts) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const CVec a = haar_state(3, rng);
    const CVec b = haar_state(3, rng);
    const PureState prod = PureState::single(a).tensor(PureState::single(b));
    const double closed = qtest::swap_test_accept(a, b);
    const double povm = qtest::swap_test_accept(Density::from_pure(prod));
    EXPECT_NEAR(closed, povm, 1e-10);
  }
}

TEST(SwapTest, CircuitFormMatchesClosedForm) {
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    const CVec a = haar_state(3, rng);
    const CVec b = haar_state(3, rng);
    EXPECT_NEAR(qtest::swap_test_accept_circuit(a, b),
                qtest::swap_test_accept(a, b), 1e-10);
  }
}

TEST(SwapTest, Lemma13SuperpositionDecomposition) {
  // For |psi> = alpha |sym> + beta |antisym>, acceptance = |alpha|^2.
  // Use the singlet (antisymmetric) and a triplet (symmetric) component.
  CVec singlet(4);
  singlet[1] = Complex{1.0 / std::sqrt(2.0), 0.0};
  singlet[2] = Complex{-1.0 / std::sqrt(2.0), 0.0};
  CVec triplet(4);
  triplet[1] = Complex{1.0 / std::sqrt(2.0), 0.0};
  triplet[2] = Complex{1.0 / std::sqrt(2.0), 0.0};
  const double alpha = 0.6;
  const double beta = std::sqrt(1.0 - alpha * alpha);
  CVec mixed = triplet * Complex{alpha, 0.0} + singlet * Complex{beta, 0.0};
  const PureState psi(RegisterShape({2, 2}), mixed);
  EXPECT_NEAR(qtest::swap_test_accept(Density::from_pure(psi)), alpha * alpha,
              1e-10);
}

TEST(SwapTest, Lemma14BoundHoldsOnEntangledStates) {
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    const CVec amps = haar_state(9, rng);
    const PureState psi(RegisterShape({3, 3}), amps);
    const Density rho = Density::from_pure(psi);
    const double accept = qtest::swap_test_accept(rho);
    const double eps = 1.0 - accept;
    const Density r1 = reduce_to(rho, {0});
    const Density r2 = reduce_to(rho, {1});
    const double dist = trace_distance(r1, r2);
    EXPECT_LE(dist, qtest::lemma14_distance_bound(eps) + 1e-7);
  }
}

TEST(PermutationTest, KEqualsTwoReducesToSwapTest) {
  Rng rng(5);
  const CVec a = haar_state(4, rng);
  const CVec b = haar_state(4, rng);
  EXPECT_NEAR(qtest::permutation_test_accept({a, b}),
              qtest::swap_test_accept(a, b), 1e-10);
  // Projector form too.
  const CMat proj = qtest::symmetric_projector(4, 2);
  const CMat swap_form =
      (CMat::identity(16) + dqma::quantum::swap_unitary(4)) * Complex{0.5, 0.0};
  EXPECT_DENSITY_NEAR_TOL(proj, swap_form, 1e-12);
}

TEST(PermutationTest, SymmetricProjectorIsIdempotent) {
  for (int k : {2, 3, 4}) {
    const CMat p = qtest::symmetric_projector(2, k);
    EXPECT_DENSITY_NEAR_TOL(p * p, p, 1e-10);
    EXPECT_TRUE(p.is_hermitian(1e-12));
  }
}

TEST(PermutationTest, SymmetricSubspaceDimension) {
  // dim of symmetric subspace of (C^d)^k is C(d+k-1, k).
  const auto binom = [](int n, int k) {
    double v = 1.0;
    for (int i = 0; i < k; ++i) {
      v = v * (n - i) / (i + 1);
    }
    return v;
  };
  for (int d : {2, 3}) {
    for (int k : {2, 3}) {
      const CMat p = qtest::symmetric_projector(d, k);
      EXPECT_NEAR(p.trace().real(), binom(d + k - 1, k), 1e-8)
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(PermutationTest, Lemma15IdenticalProductAcceptsWithCertainty) {
  Rng rng(6);
  const CVec psi = haar_state(3, rng);
  for (int k : {2, 3, 4, 5}) {
    std::vector<CVec> factors(static_cast<std::size_t>(k), psi);
    EXPECT_NEAR(qtest::permutation_test_accept(factors), 1.0, 1e-9) << k;
  }
}

TEST(PermutationTest, GramPermanentMatchesProjectorOnProducts) {
  Rng rng(7);
  for (int k : {2, 3}) {
    std::vector<CVec> factors;
    PureState prod = PureState::single(haar_state(2, rng));
    factors.push_back(prod.amplitudes());
    for (int i = 1; i < k; ++i) {
      const CVec f = haar_state(2, rng);
      factors.push_back(f);
      prod = prod.tensor(PureState::single(f));
    }
    const double closed = qtest::permutation_test_accept(factors);
    const double povm =
        qtest::permutation_test_accept(Density::from_pure(prod));
    EXPECT_NEAR(closed, povm, 1e-9) << "k=" << k;
  }
}

TEST(PermutationTest, OrthogonalPairLowersAcceptance) {
  // k orthogonal states: acceptance = k!/k! * (1/k!) * perm(I) = 1/k! ... =
  // perm(identity Gram)/k! = 1/k!.
  for (int k : {2, 3, 4}) {
    std::vector<CVec> factors;
    for (int i = 0; i < k; ++i) {
      factors.push_back(CVec::basis(8, i));
    }
    double kfact = 1.0;
    for (int s = 2; s <= k; ++s) kfact *= s;
    EXPECT_NEAR(qtest::permutation_test_accept(factors), 1.0 / kfact, 1e-10);
  }
}

TEST(PermutationTest, Lemma16BoundHoldsOnEntangledStates) {
  Rng rng(8);
  for (int trial = 0; trial < 4; ++trial) {
    const CVec amps = haar_state(8, rng);
    const PureState psi(RegisterShape({2, 2, 2}), amps);
    const Density rho = Density::from_pure(psi);
    const double accept = qtest::permutation_test_accept(rho);
    const double eps = 1.0 - accept;
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        const Density ri = reduce_to(rho, {i});
        const Density rj = reduce_to(rho, {j});
        EXPECT_LE(trace_distance(ri, rj),
                  qtest::lemma16_distance_bound(eps) + 1e-7);
      }
    }
  }
}

}  // namespace

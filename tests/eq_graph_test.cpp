// Tests for the general-graph EQ protocol (Theorem 19 / Algorithm 5).
#include <gtest/gtest.h>

#include <cmath>

#include "dqma/eq_graph.hpp"
#include "network/graph.hpp"
#include "support/test_support.hpp"
#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace {

using dqma::network::Graph;
using dqma::protocol::EqGraphProtocol;
using dqma::protocol::GraphTestMode;
using dqma::test::random_unequal_pair;
using dqma::test::random_unequal_to;
using dqma::util::Bitstring;
using dqma::util::Rng;

std::vector<Bitstring> equal_inputs(const Bitstring& x, int t) {
  return std::vector<Bitstring>(static_cast<std::size_t>(t), x);
}

class EqGraphCompletenessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EqGraphCompletenessTest, PerfectCompletenessOnStars) {
  const auto [n, t] = GetParam();
  Rng rng(1);
  const Graph g = Graph::star(t);
  std::vector<int> terminals;
  for (int i = 1; i <= t; ++i) {
    terminals.push_back(i);
  }
  const EqGraphProtocol protocol(g, terminals, n, 0.3, 2);
  const Bitstring x = Bitstring::random(n, rng);
  EXPECT_NEAR(protocol.completeness(x), 1.0, 1e-9) << "n=" << n << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EqGraphCompletenessTest,
                         ::testing::Combine(::testing::Values(8, 32),
                                            ::testing::Values(2, 3, 5)));

TEST(EqGraphTest, PerfectCompletenessOnPaths) {
  Rng rng(2);
  const Graph g = Graph::path(6);
  const EqGraphProtocol protocol(g, {0, 6}, 16, 0.3, 3);
  const Bitstring x = Bitstring::random(16, rng);
  EXPECT_NEAR(protocol.completeness(x), 1.0, 1e-9);
}

TEST(EqGraphTest, PerfectCompletenessOnRandomTreesWithManyTerminals) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = Graph::random_tree(20, rng);
    std::vector<int> terminals{0, 5, 11, 19};
    const EqGraphProtocol protocol(g, terminals, 12, 0.3, 1);
    const Bitstring x = Bitstring::random(12, rng);
    EXPECT_NEAR(protocol.completeness(x), 1.0, 1e-9) << "trial " << trial;
  }
}

TEST(EqGraphTest, InternalTerminalVirtualLeafKeepsCompleteness) {
  // Terminals on a path interior force the re-hang construction.
  Rng rng(4);
  const Graph g = Graph::path(4);
  const EqGraphProtocol protocol(g, {0, 2, 4}, 12, 0.3, 2);
  const Bitstring x = Bitstring::random(12, rng);
  EXPECT_NEAR(protocol.completeness(x), 1.0, 1e-9);
}

TEST(EqGraphTest, DeviantLeafIsDetectedWithPaperRepetitions) {
  Rng rng(5);
  const Graph g = Graph::star(4);
  const EqGraphProtocol protocol(g, {1, 2, 3, 4}, 16, 0.3,
                                 /*reps=*/2 * 81 * 3 * 3 / 2);
  const Bitstring x = Bitstring::random(16, rng);
  const Bitstring z = random_unequal_to(x, rng);
  std::vector<Bitstring> inputs = equal_inputs(x, 4);
  inputs[2] = z;
  EXPECT_LE(protocol.best_attack_accept(inputs), 1.0 / 3.0);
}

TEST(EqGraphTest, SingleRepetitionAttackSurvivesOnDeepTrees) {
  Rng rng(6);
  const Graph g = Graph::path(10);
  const EqGraphProtocol protocol(g, {0, 10}, 16, 0.3, 1);
  const auto [x, y] = random_unequal_pair(16, rng);
  EXPECT_GE(protocol.best_attack_accept({x, y}), 0.6);
}

TEST(EqGraphTest, PermutationTestCostIndependentOfTerminals) {
  // Theorem 19's improvement: local proof size does not grow with t.
  const int n = 32;
  const Graph g3 = Graph::star(3);
  const Graph g7 = Graph::star(7);
  const EqGraphProtocol p3(g3, {1, 2, 3}, n, 0.3, 5);
  const EqGraphProtocol p7(g7, {1, 2, 3, 4, 5, 6, 7}, n, 0.3, 5);
  EXPECT_EQ(p3.costs().local_proof_qubits, p7.costs().local_proof_qubits);
}

TEST(EqGraphAblationTest, PermutationTestCatchesBetterThanRandomPair) {
  // On a star with t leaves the random-pair SWAP baseline tests the deviant
  // child only with probability 1/(t-1) per repetition; the permutation
  // test involves it always.
  Rng rng(7);
  const int t = 5;
  const Graph g = Graph::star(t);
  std::vector<int> terminals;
  for (int i = 1; i <= t; ++i) {
    terminals.push_back(i);
  }
  const EqGraphProtocol perm(g, terminals, 16, 0.3, 1,
                             GraphTestMode::kPermutationTest);
  const EqGraphProtocol pair(g, terminals, 16, 0.3, 1,
                             GraphTestMode::kRandomPairSwap);
  const Bitstring x = Bitstring::random(16, rng);
  std::vector<Bitstring> inputs = equal_inputs(x, t);
  const Bitstring z = random_unequal_to(x, rng);
  inputs[3] = z;
  EXPECT_LT(perm.best_attack_accept(inputs),
            pair.best_attack_accept(inputs) + 1e-9);
}

TEST(EqGraphAblationTest, RandomPairModeStillComplete) {
  Rng rng(8);
  const Graph g = Graph::star(4);
  const EqGraphProtocol protocol(g, {1, 2, 3, 4}, 12, 0.3, 2,
                                 GraphTestMode::kRandomPairSwap);
  const Bitstring x = Bitstring::random(12, rng);
  EXPECT_NEAR(protocol.completeness(x), 1.0, 1e-9);
}

TEST(EqGraphTest, TwoTerminalAcceptIsSymmetricInDeviation) {
  // Flipping which endpoint deviates should not change the attack value
  // much (the protocol is direction-asymmetric, but detection is driven by
  // the same fingerprint overlap).
  Rng rng(9);
  const Graph g = Graph::path(5);
  const EqGraphProtocol protocol(g, {0, 5}, 16, 0.3, 1);
  const auto [x, y] = random_unequal_pair(16, rng);
  const double a = protocol.best_attack_accept({x, y});
  const double b = protocol.best_attack_accept({y, x});
  EXPECT_NEAR(a, b, 0.05);
}

}  // namespace

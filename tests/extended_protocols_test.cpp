// Tests for the Sec. 6.2 extensions: l1-graph distances (Corollary 35),
// LTF XOR functions (Corollary 39), F_2-rank (Corollary 41), and the LOCC
// conversion accounting (Lemma 20 / Corollary 21).
#include <gtest/gtest.h>

#include <cmath>

#include "comm/fq_rank.hpp"
#include "comm/l1_graph.hpp"
#include "dqma/forall_f.hpp"
#include "dqma/locc.hpp"
#include "network/graph.hpp"
#include "support/test_support.hpp"
#include "util/gf2.hpp"
#include "util/rng.hpp"

namespace {

using dqma::comm::FqRankOneWayProtocol;
using dqma::comm::HypercubeMetric;
using dqma::comm::JohnsonMetric;
using dqma::comm::L1DistanceOneWayProtocol;
using dqma::protocol::corollary21_eq_costs;
using dqma::protocol::locc_conversion_costs;
using dqma::util::Bitstring;
using dqma::util::Gf2Matrix;
using dqma::util::Rng;

// --- GF(2) linear algebra ----------------------------------------------------

TEST(Gf2Test, IdentityHasFullRank) {
  EXPECT_EQ(Gf2Matrix::identity(7).rank(), 7);
}

TEST(Gf2Test, ZeroHasRankZero) {
  EXPECT_EQ(Gf2Matrix(5, 5).rank(), 0);
}

TEST(Gf2Test, RandomOfRankIsExact) {
  Rng rng(1);
  for (int r : {1, 3, 6, 10}) {
    const Gf2Matrix m = Gf2Matrix::random_of_rank(10, r, rng);
    EXPECT_EQ(m.rank(), r);
  }
}

TEST(Gf2Test, RankIsSubadditiveUnderXor) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Gf2Matrix a = Gf2Matrix::random(8, 8, rng);
    const Gf2Matrix b = Gf2Matrix::random(8, 8, rng);
    EXPECT_LE((a ^ b).rank(), a.rank() + b.rank());
  }
}

TEST(Gf2Test, ProductRankBoundedByFactors) {
  Rng rng(3);
  const Gf2Matrix a = Gf2Matrix::random(8, 3, rng);
  const Gf2Matrix b = Gf2Matrix::random(3, 8, rng);
  EXPECT_LE((a * b).rank(), 3);
}

TEST(Gf2Test, BitsRoundTrip) {
  Rng rng(4);
  const Gf2Matrix m = Gf2Matrix::random(6, 9, rng);
  EXPECT_EQ(Gf2Matrix::from_bits(m.to_bits(), 6, 9), m);
}

TEST(Gf2Test, WideBitsRoundTripExercisesWordSplicing) {
  // The word-parallel from_bits packer splices each destination word from
  // up to two source words; widths straddling the 64-bit boundaries (and
  // rows whose bit offsets land mid-word) cover every shift case.
  Rng rng(17);
  for (const auto& [rows, cols] :
       {std::pair{3, 64}, {5, 65}, {4, 100}, {2, 127}, {3, 130}, {7, 63}}) {
    const Gf2Matrix m = Gf2Matrix::random(rows, cols, rng);
    EXPECT_EQ(Gf2Matrix::from_bits(m.to_bits(), rows, cols), m)
        << rows << "x" << cols;
  }
}

TEST(Gf2Test, WordParallelRankMatchesBitwiseElimination) {
  // Reference: the textbook per-bit Gaussian elimination the word-parallel
  // pivot search replaced.
  const auto naive_rank = [](const Gf2Matrix& m) {
    std::vector<std::vector<bool>> a(static_cast<std::size_t>(m.rows()));
    for (int i = 0; i < m.rows(); ++i) {
      for (int j = 0; j < m.cols(); ++j) {
        a[static_cast<std::size_t>(i)].push_back(m.get(i, j));
      }
    }
    int rank = 0;
    for (int col = 0; col < m.cols() && rank < m.rows(); ++col) {
      int pivot = -1;
      for (int i = rank; i < m.rows(); ++i) {
        if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(col)]) {
          pivot = i;
          break;
        }
      }
      if (pivot < 0) continue;
      std::swap(a[static_cast<std::size_t>(pivot)],
                a[static_cast<std::size_t>(rank)]);
      for (int i = rank + 1; i < m.rows(); ++i) {
        if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(col)]) {
          for (int j = 0; j < m.cols(); ++j) {
            a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] ^
                a[static_cast<std::size_t>(rank)][static_cast<std::size_t>(j)];
          }
        }
      }
      ++rank;
    }
    return rank;
  };
  Rng rng(18);
  for (const auto& [rows, cols] :
       {std::pair{8, 8}, {12, 70}, {70, 12}, {16, 128}, {30, 30}}) {
    for (int trial = 0; trial < 4; ++trial) {
      const Gf2Matrix m = Gf2Matrix::random(rows, cols, rng);
      EXPECT_EQ(m.rank(), naive_rank(m)) << rows << "x" << cols;
    }
  }
  // Sparse matrices exercise the whole-word column skip.
  for (int trial = 0; trial < 4; ++trial) {
    Gf2Matrix sparse(20, 200);
    for (int k = 0; k < 12; ++k) {
      sparse.set(static_cast<int>(rng.next_below(20)),
                 static_cast<int>(rng.next_below(200)), true);
    }
    EXPECT_EQ(sparse.rank(), naive_rank(sparse));
  }
}

TEST(Gf2Test, MultiplicationMatchesManual) {
  // [[1,1],[0,1]] * [[1,0],[1,1]] = [[0,1],[1,1]] over GF(2).
  Gf2Matrix a(2, 2);
  a.set(0, 0, true);
  a.set(0, 1, true);
  a.set(1, 1, true);
  Gf2Matrix b(2, 2);
  b.set(0, 0, true);
  b.set(1, 0, true);
  b.set(1, 1, true);
  const Gf2Matrix c = a * b;
  EXPECT_FALSE(c.get(0, 0));
  EXPECT_TRUE(c.get(0, 1));
  EXPECT_TRUE(c.get(1, 0));
  EXPECT_TRUE(c.get(1, 1));
}

// --- l1 graphs ----------------------------------------------------------------

TEST(L1GraphTest, JohnsonDistanceMatchesSubsetIntersection) {
  Rng rng(5);
  const JohnsonMetric metric(10, 4);
  for (int trial = 0; trial < 30; ++trial) {
    const Bitstring u = metric.random_vertex(rng);
    const Bitstring v = metric.random_vertex(rng);
    EXPECT_EQ(u.weight(), 4);
    // dist = k - |intersection|.
    int inter = 0;
    for (int i = 0; i < 10; ++i) {
      inter += (u.get(i) && v.get(i)) ? 1 : 0;
    }
    EXPECT_EQ(metric.distance(u, v), 4 - inter);
    // 2-scale embedding.
    EXPECT_EQ(metric.embed(u).distance(metric.embed(v)),
              2 * metric.distance(u, v));
  }
}

TEST(L1GraphTest, HypercubeProtocolCompleteAndSound) {
  Rng rng(6);
  const HypercubeMetric metric(24);
  const L1DistanceOneWayProtocol protocol(metric, 2, 0.35);
  const Bitstring u = metric.random_vertex(rng);
  const Bitstring close = Bitstring::random_at_distance(u, 2, rng);
  EXPECT_TRUE(protocol.predicate(u, close));
  EXPECT_NEAR(protocol.honest_accept(u, close), 1.0, 1e-9);
  const Bitstring far = Bitstring::random_at_distance(u, 10, rng);
  EXPECT_FALSE(protocol.predicate(u, far));
  EXPECT_LT(protocol.honest_accept(u, far), 1.0 / 3.0);
}

TEST(L1GraphTest, JohnsonProtocolCompleteAndSound) {
  Rng rng(7);
  const JohnsonMetric metric(16, 5);
  const L1DistanceOneWayProtocol protocol(metric, 1, 0.35);
  // Close pair: swap one element (distance 1).
  Bitstring u = metric.random_vertex(rng);
  Bitstring v = u;
  int in_pos = -1;
  int out_pos = -1;
  for (int i = 0; i < 16; ++i) {
    if (v.get(i) && in_pos < 0) in_pos = i;
    if (!v.get(i) && out_pos < 0) out_pos = i;
  }
  v.flip(in_pos);
  v.flip(out_pos);
  ASSERT_EQ(metric.distance(u, v), 1);
  EXPECT_NEAR(protocol.honest_accept(u, v), 1.0, 1e-9);
  // Far pair: disjoint support if possible.
  Bitstring w(16);
  int placed = 0;
  for (int i = 0; i < 16 && placed < 5; ++i) {
    if (!u.get(i)) {
      w.set(i, true);
      ++placed;
    }
  }
  ASSERT_EQ(metric.distance(u, w), 5);
  EXPECT_LT(protocol.honest_accept(u, w), 1.0 / 3.0);
}

TEST(L1GraphTest, Corollary35EndToEndOnStar) {
  // dist^{<=d}_{t,H} over a network: forall_t of the l1 protocol.
  Rng rng(8);
  const HypercubeMetric metric(16);
  const L1DistanceOneWayProtocol one_way(metric, 2, 0.35);
  const dqma::network::Graph g = dqma::network::Graph::star(3);
  const dqma::protocol::ForallFProtocol protocol(g, {1, 2, 3}, one_way, 20);
  const Bitstring base = metric.random_vertex(rng);
  const std::vector<Bitstring> yes{
      base, Bitstring::random_at_distance(base, 1, rng),
      Bitstring::random_at_distance(base, 1, rng)};
  ASSERT_TRUE(protocol.predicate(yes));
  EXPECT_NEAR(protocol.completeness(yes), 1.0, 1e-9);
  std::vector<Bitstring> no = yes;
  no[1] = Bitstring::random_at_distance(base, 9, rng);
  ASSERT_FALSE(protocol.predicate(no));
  const auto attack = protocol.best_attack_accept(no, rng, 150);
  EXPECT_LE(attack.mean - attack.half_width_95, 1.0 / 3.0);
}

// --- F_2 rank -----------------------------------------------------------------

TEST(FqRankTest, PredicateMatchesRank) {
  Rng rng(9);
  const FqRankOneWayProtocol protocol(6, 3, 4);
  const Gf2Matrix low = Gf2Matrix::random_of_rank(6, 2, rng);
  const Gf2Matrix high = Gf2Matrix::random_of_rank(6, 4, rng);
  const Bitstring zero = Gf2Matrix(6, 6).to_bits();
  EXPECT_TRUE(protocol.predicate(low.to_bits(), zero));
  EXPECT_FALSE(protocol.predicate(high.to_bits(), zero));
}

TEST(FqRankTest, OneSidedCompleteness) {
  Rng rng(10);
  const FqRankOneWayProtocol protocol(6, 3, 4);
  // rank(X ^ Y) = 2 < 3: accepted with certainty (sketch rank can only
  // shrink).
  const Gf2Matrix y = Gf2Matrix::random(6, 6, rng);
  const Gf2Matrix diff = Gf2Matrix::random_of_rank(6, 2, rng);
  const Gf2Matrix x = y ^ diff;
  EXPECT_NEAR(protocol.honest_accept(x.to_bits(), y.to_bits()), 1.0, 1e-12);
}

TEST(FqRankTest, HighRankIsDetected) {
  // The soundness guarantee is per instance, so testing the max over many
  // instances requires a sketch count tuned for the union: target error
  // 1/50 per instance keeps the max over 10 trials below 1/3 w.h.p.
  Rng rng(11);
  const int k = FqRankOneWayProtocol::recommended_sketches(1.0 / 50);
  const FqRankOneWayProtocol protocol(6, 3, k);
  double worst = 0.0;
  double mean = 0.0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const Gf2Matrix y = Gf2Matrix::random(6, 6, rng);
    const Gf2Matrix diff = Gf2Matrix::random_of_rank(6, 5, rng);
    const Gf2Matrix x = y ^ diff;
    const double accept = protocol.honest_accept(x.to_bits(), y.to_bits());
    worst = std::max(worst, accept);
    mean += accept / trials;
  }
  EXPECT_LE(worst, 1.0 / 3.0);
  EXPECT_LE(mean, 1.0 / 10.0);
}

TEST(FqRankTest, DetectionImprovesWithSketches) {
  Rng rng(13);
  const FqRankOneWayProtocol weak(6, 3, 1, 555);
  const FqRankOneWayProtocol strong(6, 3, 12, 555);
  double weak_mean = 0.0;
  double strong_mean = 0.0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const Gf2Matrix y = Gf2Matrix::random(6, 6, rng);
    const Gf2Matrix diff = Gf2Matrix::random_of_rank(6, 5, rng);
    const Gf2Matrix x = y ^ diff;
    weak_mean += weak.honest_accept(x.to_bits(), y.to_bits()) / trials;
    strong_mean += strong.honest_accept(x.to_bits(), y.to_bits()) / trials;
  }
  EXPECT_LT(strong_mean, weak_mean);
  EXPECT_LE(strong_mean, 0.1);
}

TEST(FqRankTest, MessageCostIsSketchBits) {
  const FqRankOneWayProtocol protocol(8, 3, 5);
  EXPECT_EQ(protocol.message_qubits(), 5 * 3 * 3);
}

TEST(FqRankTest, SuperposedMessagesAreSampled) {
  // A |+> register triggers the sampling path; acceptance must stay a
  // valid probability and be deterministic.
  Rng rng(12);
  const FqRankOneWayProtocol protocol(4, 2, 2);
  const Gf2Matrix y = Gf2Matrix::random(4, 4, rng);
  const Gf2Matrix x = y;  // rank 0 difference: honest accepts
  auto message = protocol.honest_message(x.to_bits());
  dqma::linalg::CVec plus(2);
  plus[0] = dqma::linalg::Complex{1.0 / std::sqrt(2.0), 0.0};
  plus[1] = plus[0];
  message[0] = plus;
  const double a1 = protocol.accept_product(y.to_bits(), message);
  const double a2 = protocol.accept_product(y.to_bits(), message);
  EXPECT_EQ(a1, a2);
  EXPECT_PROBABILITY(a1);
}

// --- LOCC conversion -----------------------------------------------------------

TEST(LoccTest, Lemma20OverheadFormulas) {
  dqma::protocol::CostProfile source;
  source.local_proof_qubits = 10;
  source.local_message_qubits = 5;
  source.total_message_qubits = 40;
  const auto out = locc_conversion_costs(source, 3);
  EXPECT_EQ(out.local_proof_qubits, 10 + 3 * 5 * 40);
  EXPECT_EQ(out.local_message_bits, 5 * 40);
}

TEST(LoccTest, Corollary21GrowsWithNetworkSize) {
  const auto small = corollary21_eq_costs(64, 4, 10, 3);
  const auto large = corollary21_eq_costs(64, 4, 40, 3);
  EXPECT_GT(large.local_proof_qubits, small.local_proof_qubits);
  EXPECT_GT(large.local_message_bits, small.local_message_bits);
}

TEST(LoccTest, Corollary21ScalesAsR4Log2N) {
  // Doubling r multiplies the message term by ~16 (r^2 from each of the
  // local and total message factors).
  const auto r4 = corollary21_eq_costs(64, 4, 20, 3);
  const auto r8 = corollary21_eq_costs(64, 8, 20, 3);
  const double ratio = static_cast<double>(r8.local_message_bits) /
                       static_cast<double>(r4.local_message_bits);
  EXPECT_NEAR(ratio, 16.0, 2.0);
}

}  // namespace

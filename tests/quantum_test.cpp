// Unit + property tests for the quantum-state layer.
#include <gtest/gtest.h>

#include <cmath>

#include "quantum/density.hpp"
#include "quantum/distance.hpp"
#include "quantum/measurement.hpp"
#include "quantum/partial_trace.hpp"
#include "quantum/random.hpp"
#include "quantum/state.hpp"
#include "quantum/unitary.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace {

using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::CVec;
using dqma::quantum::BinaryPovm;
using dqma::quantum::Density;
using dqma::quantum::fidelity;
using dqma::quantum::fuchs_van_de_graaf_holds;
using dqma::quantum::haar_state;
using dqma::quantum::haar_unitary;
using dqma::quantum::partial_trace;
using dqma::quantum::PureState;
using dqma::quantum::random_density;
using dqma::quantum::reduce_to;
using dqma::quantum::RegisterShape;
using dqma::quantum::trace_distance;
using dqma::util::Rng;

TEST(RegisterShapeTest, FlattenUnflattenRoundTrip) {
  const RegisterShape shape({2, 3, 4});
  EXPECT_EQ(shape.total_dim(), 24);
  for (long long flat = 0; flat < 24; ++flat) {
    const auto idx = shape.unflatten(flat);
    EXPECT_EQ(shape.flatten(idx), flat);
  }
}

TEST(RegisterShapeTest, RowMajorConvention) {
  const RegisterShape shape({2, 3});
  EXPECT_EQ(shape.flatten({1, 2}), 5);
  EXPECT_EQ(shape.flatten({0, 2}), 2);
}

TEST(PureStateTest, DefaultIsAllZeros) {
  const PureState psi{RegisterShape({2, 2})};
  EXPECT_NEAR(psi.outcome_probability(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(psi.outcome_probability(1, 0), 1.0, 1e-12);
}

TEST(PureStateTest, ApplyOnSecondRegisterOnly) {
  PureState psi{RegisterShape({2, 2})};
  psi.apply(dqma::quantum::hadamard(), {1});
  EXPECT_NEAR(psi.outcome_probability(1, 0), 0.5, 1e-12);
  EXPECT_NEAR(psi.outcome_probability(0, 0), 1.0, 1e-12);
}

TEST(PureStateTest, ApplyMatchesGlobalKronecker) {
  Rng rng(11);
  // Random two-register state; apply U on register 0 and compare against
  // (U otimes I) on the flat vector.
  const CVec amps = haar_state(6, rng);
  PureState psi(RegisterShape({2, 3}), amps);
  const CMat u = haar_unitary(2, rng);
  PureState applied = psi;
  applied.apply(u, {0});
  const CVec expected = u.kron(CMat::identity(3)) * amps;
  EXPECT_STATE_NEAR(applied.amplitudes(), expected);
}

TEST(PureStateTest, ApplyOnRegisterPairMatchesKronecker) {
  Rng rng(12);
  const CVec amps = haar_state(12, rng);
  PureState psi(RegisterShape({2, 3, 2}), amps);
  const CMat u = haar_unitary(6, rng);  // acts on registers {0,1}
  PureState applied = psi;
  applied.apply(u, {0, 1});
  const CVec expected = u.kron(CMat::identity(2)) * amps;
  EXPECT_STATE_NEAR(applied.amplitudes(), expected);
}

TEST(PureStateTest, MeasurementCollapsesAndOutcomesFollowBornRule) {
  Rng rng(13);
  PureState base{RegisterShape({2})};
  base.apply(dqma::quantum::hadamard(), {0});
  int ones = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    PureState psi = base;
    const int outcome = psi.measure_register(0, rng);
    ones += outcome;
    // Collapsed state must be deterministic on re-measurement.
    EXPECT_NEAR(psi.outcome_probability(0, outcome), 1.0, 1e-9);
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.05);
}

TEST(DensityTest, BellStateReducesToMaximallyMixed) {
  CVec bell(4);
  bell[0] = Complex{1.0 / std::sqrt(2.0), 0.0};
  bell[3] = Complex{1.0 / std::sqrt(2.0), 0.0};
  const PureState psi(RegisterShape({2, 2}), bell);
  const Density reduced = reduce_to(Density::from_pure(psi), {0});
  EXPECT_NEAR(reduced.matrix()(0, 0).real(), 0.5, 1e-10);
  EXPECT_NEAR(reduced.matrix()(1, 1).real(), 0.5, 1e-10);
  EXPECT_NEAR(std::abs(reduced.matrix()(0, 1)), 0.0, 1e-10);
}

TEST(DensityTest, PartialTraceOfProductIsFactor) {
  Rng rng(21);
  const CVec a = haar_state(3, rng);
  const CVec b = haar_state(4, rng);
  const PureState psi =
      PureState::single(a).tensor(PureState::single(b));
  const Density left = partial_trace(Density::from_pure(psi), {1});
  const CMat expected = CMat::projector(a);
  EXPECT_DENSITY_NEAR_TOL(left.matrix(), expected, dqma::util::kAlgebraTol);
}

TEST(DensityTest, PartialTracePreservesTrace) {
  Rng rng(22);
  const CVec amps = haar_state(24, rng);
  const PureState psi(RegisterShape({2, 3, 4}), amps);
  const Density rho = Density::from_pure(psi);
  for (int reg = 0; reg < 3; ++reg) {
    const Density reduced = partial_trace(rho, {reg});
    EXPECT_NEAR(reduced.matrix().trace().real(), 1.0, 1e-9);
  }
}

TEST(DensityTest, ExpectationOfEmbeddedIdentityIsOne) {
  Rng rng(23);
  const CVec amps = haar_state(8, rng);
  const Density rho = Density::from_pure(PureState(RegisterShape({2, 2, 2}), amps));
  EXPECT_NEAR(rho.expectation(CMat::identity(2), {1}), 1.0, 1e-9);
  EXPECT_NEAR(rho.expectation(CMat::identity(4), {0, 2}), 1.0, 1e-9);
}

TEST(DensityTest, MixWithInterpolatesTrace) {
  const Density a = Density::maximally_mixed(RegisterShape({2}));
  Density b = Density::from_pure(PureState{RegisterShape({2})});
  b.mix_with(a, 0.25);
  // 0.25 * |0><0| + 0.75 * I/2: diagonal (0.625, 0.375).
  EXPECT_NEAR(b.matrix()(0, 0).real(), 0.625, 1e-10);
  EXPECT_NEAR(b.matrix()(1, 1).real(), 0.375, 1e-10);
}

TEST(DistanceTest, IdenticalStatesHaveZeroDistanceUnitFidelity) {
  Rng rng(31);
  const CMat rho = random_density(5, rng);
  const Density d(RegisterShape({5}), rho);
  EXPECT_NEAR(trace_distance(d, d), 0.0, 1e-8);
  EXPECT_NEAR(fidelity(d, d), 1.0, 1e-7);
}

TEST(DistanceTest, OrthogonalPureStatesAreMaximallyDistant) {
  const PureState e0 = PureState::single(CVec::basis(2, 0));
  const PureState e1 = PureState::single(CVec::basis(2, 1));
  EXPECT_NEAR(trace_distance(e0, e1), 1.0, 1e-12);
  EXPECT_NEAR(fidelity(e0, e1), 0.0, 1e-12);
  EXPECT_NEAR(trace_distance(Density::from_pure(e0), Density::from_pure(e1)),
              1.0, 1e-9);
}

TEST(DistanceTest, FuchsVanDeGraafPropertyOnRandomStates) {
  Rng rng(32);
  for (int trial = 0; trial < 8; ++trial) {
    const Density a(RegisterShape({4}), random_density(4, rng));
    const Density b(RegisterShape({4}), random_density(4, rng));
    const double td = trace_distance(a, b);
    const double f = fidelity(a, b);
    EXPECT_TRUE(fuchs_van_de_graaf_holds(td, f, 1e-6))
        << "D=" << td << " F=" << f;
  }
}

TEST(DistanceTest, PureStateShortcutsMatchDensityComputation) {
  Rng rng(33);
  const PureState a = PureState::single(haar_state(4, rng));
  const PureState b = PureState::single(haar_state(4, rng));
  EXPECT_NEAR(trace_distance(a, b),
              trace_distance(Density::from_pure(a), Density::from_pure(b)),
              1e-7);
  EXPECT_NEAR(fidelity(a, b),
              fidelity(Density::from_pure(a), Density::from_pure(b)), 1e-6);
}

TEST(UnitaryTest, SwapActsCorrectly) {
  const CMat swap = dqma::quantum::swap_unitary(3);
  const CVec a = CVec::basis(3, 0);
  const CVec b = CVec::basis(3, 2);
  const CVec swapped = swap * a.tensor(b);
  EXPECT_STATE_NEAR_TOL(swapped, b.tensor(a), 1e-12);
  EXPECT_TRUE(swap.is_unitary(1e-12));
}

TEST(UnitaryTest, PermutationUnitaryMatchesDefinition) {
  // pi = (0 -> 1 -> 2 -> 0): U_pi |i1 i2 i3> = |i_{pi^{-1}(1)} ...>.
  const std::vector<int> perm{1, 2, 0};
  const CMat u = dqma::quantum::permutation_unitary(2, perm);
  EXPECT_TRUE(u.is_unitary(1e-12));
  // |a b c> -> |i_{pi^{-1}(0)} i_{pi^{-1}(1)} i_{pi^{-1}(2)}> = |c a b>.
  const CVec in = CVec::basis(2, 1).tensor(CVec::basis(2, 0)).tensor(
      CVec::basis(2, 0));  // |100>
  const CVec out = u * in;
  const CVec expected = CVec::basis(2, 0).tensor(CVec::basis(2, 1)).tensor(
      CVec::basis(2, 0));  // |010>
  EXPECT_STATE_NEAR_TOL(out, expected, 1e-12);
}

TEST(UnitaryTest, SelectUnitaryBlocks) {
  const CMat cswap = dqma::quantum::select_unitary(
      {CMat::identity(4), dqma::quantum::swap_unitary(2)});
  EXPECT_TRUE(cswap.is_unitary(1e-12));
  // |1>|01> -> |1>|10>.
  const CVec in = CVec::basis(2, 1).tensor(CVec::basis(4, 1));
  const CVec out = cswap * in;
  const CVec expected = CVec::basis(2, 1).tensor(CVec::basis(4, 2));
  EXPECT_STATE_NEAR_TOL(out, expected, 1e-12);
}

TEST(UnitaryTest, AllPermutationsCount) {
  EXPECT_EQ(dqma::quantum::all_permutations(1).size(), 1u);
  EXPECT_EQ(dqma::quantum::all_permutations(3).size(), 6u);
  EXPECT_EQ(dqma::quantum::all_permutations(5).size(), 120u);
}

TEST(RandomTest, HaarUnitaryIsUnitary) {
  Rng rng(41);
  for (int d : {2, 3, 5}) {
    EXPECT_TRUE(haar_unitary(d, rng).is_unitary(1e-9));
  }
}

TEST(RandomTest, RandomDensityIsValidState) {
  Rng rng(42);
  const CMat rho = random_density(6, rng);
  EXPECT_TRUE(rho.is_hermitian(1e-10));
  EXPECT_NEAR(rho.trace().real(), 1.0, 1e-10);
}

TEST(MeasurementTest, PovmValidatesRange) {
  CMat bad = CMat::identity(2) * Complex{2.0, 0.0};
  EXPECT_THROW(BinaryPovm{bad}, std::invalid_argument);
  CMat good = CMat::identity(2) * Complex{0.5, 0.0};
  EXPECT_NO_THROW(BinaryPovm{good});
}

TEST(MeasurementTest, ProjectorAcceptProbability) {
  const CMat proj = CMat::projector(CVec::basis(2, 0));
  const BinaryPovm povm(proj);
  PureState plus{RegisterShape({2})};
  plus.apply(dqma::quantum::hadamard(), {0});
  EXPECT_NEAR(povm.accept_probability(plus), 0.5, 1e-10);
}

}  // namespace

// Tests of the runtime-dispatched SIMD kernel engine (linalg/simd.hpp)
// and the layout-tagged view layer it sits behind (linalg/complex_view.hpp):
//  * level parsing / detection / clamping;
//  * AoS<->SoA conversion round-trips (exact);
//  * per-level kernel agreement with the scalar reference (tolerance);
//  * address-invariance of the vector tails (regression: auto-vectorized
//    scalar tails once made rounding depend on buffer addresses);
//  * per-level byte-determinism across the kernel-thread axis;
//  * SoA-view kernels against their AoS counterparts;
//  * the unified LinearOperator eigensolver front-end.
// Vector levels are exercised only where the host supports them, so the
// suite passes (with reduced coverage) on any x86-64 or non-x86 build.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "linalg/aligned.hpp"
#include "linalg/complex_view.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"
#include "linalg/vector.hpp"
#include "quantum/local_ops.hpp"
#include "quantum/random.hpp"
#include "support/test_support.hpp"
#include "sweep/parallel.hpp"

namespace {

using dqma::linalg::CMat;
using dqma::linalg::Complex;
using dqma::linalg::ConstComplexView;
using dqma::linalg::CVec;
using dqma::linalg::Layout;
using dqma::linalg::MutComplexView;
using dqma::linalg::SplitBuffer;
using dqma::quantum::haar_state;
using dqma::quantum::haar_unitary;
using dqma::quantum::LocalOpPlan;
using dqma::quantum::RegisterShape;
using dqma::util::Rng;
namespace simd = dqma::linalg::simd;

/// Every level this host can execute, scalar first.
std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (const simd::Level level : {simd::Level::kAvx2, simd::Level::kAvx512}) {
    if (simd::is_supported(level)) {
      levels.push_back(level);
    }
  }
  return levels;
}

CVec random_vec(long long n, Rng& rng) {
  CVec v(static_cast<int>(n));
  for (long long i = 0; i < n; ++i) {
    v[static_cast<int>(i)] =
        Complex{rng.next_double() - 0.5, rng.next_double() - 0.5};
  }
  return v;
}

TEST(SimdLevelTest, ParsesAndNamesLevels) {
  EXPECT_EQ(simd::parse_level("scalar"), simd::Level::kScalar);
  EXPECT_EQ(simd::parse_level("avx2"), simd::Level::kAvx2);
  EXPECT_EQ(simd::parse_level("avx512"), simd::Level::kAvx512);
  EXPECT_EQ(simd::parse_level("native"), simd::detect_best());
  EXPECT_THROW(simd::parse_level("sse9"), std::invalid_argument);
  EXPECT_THROW(simd::parse_level(""), std::invalid_argument);
  for (const simd::Level level :
       {simd::Level::kScalar, simd::Level::kAvx2, simd::Level::kAvx512}) {
    EXPECT_EQ(simd::parse_level(simd::level_name(level)), level);
  }
}

TEST(SimdLevelTest, ScalarIsAlwaysSupportedAndClampNeverRaises) {
  EXPECT_TRUE(simd::is_supported(simd::Level::kScalar));
  EXPECT_TRUE(simd::is_supported(simd::detect_best()));
  for (const simd::Level level :
       {simd::Level::kScalar, simd::Level::kAvx2, simd::Level::kAvx512}) {
    const simd::Level clamped = simd::clamp_to_supported(level);
    EXPECT_TRUE(simd::is_supported(clamped));
    EXPECT_LE(static_cast<int>(clamped), static_cast<int>(level));
  }
  // A supported level clamps to itself.
  for (const simd::Level level : supported_levels()) {
    EXPECT_EQ(simd::clamp_to_supported(level), level);
  }
}

TEST(SimdLevelTest, LevelScopeOverridesActiveOnThisThread) {
  const simd::Level before = simd::active();
  {
    const simd::LevelScope scope(simd::Level::kScalar);
    EXPECT_EQ(simd::active(), simd::Level::kScalar);
    for (const simd::Level level : supported_levels()) {
      const simd::LevelScope inner(level);
      EXPECT_EQ(simd::active(), level);
    }
    EXPECT_EQ(simd::active(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::active(), before);
}

TEST(SimdConvertTest, RoundTripsAosSoaExactlyAtEveryLevel) {
  Rng rng(21);
  for (const simd::Level level : supported_levels()) {
    for (const long long n : {0LL, 1LL, 3LL, 7LL, 8LL, 13LL, 64LL, 129LL}) {
      const CVec original = random_vec(n, rng);
      SplitBuffer split(n);
      CVec back(static_cast<int>(n));
      simd::convert(level, original, split);
      simd::convert(level, split, back);
      for (long long i = 0; i < n; ++i) {
        EXPECT_EQ(original[static_cast<int>(i)], back[static_cast<int>(i)])
            << "level " << simd::level_name(level) << " n " << n << " i " << i;
      }
    }
  }
}

TEST(SimdConvertTest, MatrixShapeRidesThroughViews) {
  CMat m(3, 5);
  m(1, 2) = Complex{1.5, -0.5};
  const ConstComplexView mv = m;
  EXPECT_TRUE(mv.is_matrix());
  EXPECT_EQ(mv.rows(), 3);
  EXPECT_EQ(mv.cols(), 5);
  EXPECT_EQ(mv.extent(), 15);
  EXPECT_EQ(mv.load(1 * 5 + 2), (Complex{1.5, -0.5}));

  SplitBuffer split(3, 5);
  simd::convert(simd::Level::kScalar, m, split);
  const ConstComplexView sv = split;
  EXPECT_EQ(sv.layout(), Layout::kSoA);
  EXPECT_EQ(sv.rows(), 3);
  EXPECT_EQ(sv.cols(), 5);
  EXPECT_EQ(sv.load(1 * 5 + 2), (Complex{1.5, -0.5}));
}

TEST(SimdKernelTest, AxpyMatchesScalarWithinToleranceOnRaggedShapes) {
  Rng rng(22);
  for (const long long n :
       {1LL, 2LL, 3LL, 5LL, 7LL, 8LL, 9LL, 15LL, 16LL, 17LL, 100LL}) {
    const CVec x = random_vec(n, rng);
    const CVec y0 = random_vec(n, rng);
    const Complex a{rng.next_double() - 0.5, rng.next_double() - 0.5};
    SplitBuffer xs(n);
    simd::convert(simd::Level::kScalar, x, xs);
    std::vector<CVec> results;
    for (const simd::Level level : supported_levels()) {
      SplitBuffer ys(n);
      CVec y = y0;
      simd::convert(simd::Level::kScalar, y, ys);
      simd::axpy(level, a.real(), a.imag(), xs.re(), xs.im(), ys.re(),
                 ys.im(), n);
      simd::convert(simd::Level::kScalar, ys, y);
      results.push_back(std::move(y));
    }
    for (std::size_t l = 1; l < results.size(); ++l) {
      EXPECT_LT(results[0].linf_distance(results[l]), 1e-12)
          << "n " << n << " level index " << l;
    }
  }
}

TEST(SimdKernelTest, DotMatchesScalarWithinToleranceBothConjModes) {
  Rng rng(23);
  for (const long long n : {1LL, 3LL, 7LL, 8LL, 9LL, 31LL, 64LL, 257LL}) {
    const CVec a = random_vec(n, rng);
    const CVec b = random_vec(n, rng);
    SplitBuffer as(n);
    SplitBuffer bs(n);
    simd::convert(simd::Level::kScalar, a, as);
    simd::convert(simd::Level::kScalar, b, bs);
    for (const bool conj_a : {false, true}) {
      const Complex reference = simd::dot(simd::Level::kScalar, conj_a,
                                          as.re(), as.im(), bs.re(), bs.im(),
                                          n);
      for (const simd::Level level : supported_levels()) {
        const Complex got = simd::dot(level, conj_a, as.re(), as.im(),
                                      bs.re(), bs.im(), n);
        EXPECT_LT(std::abs(got - reference), 1e-11 * static_cast<double>(n))
            << "n " << n << " conj " << conj_a << " level "
            << simd::level_name(level);
      }
    }
  }
}

TEST(SimdKernelTest, BlockApplyMatchesDenseReferencePerOrientation) {
  Rng rng(24);
  const long long b = 6;  // not a vector multiple: exercises the tails
  const CMat op = haar_unitary(static_cast<int>(b), rng);
  const CVec in = random_vec(b, rng);
  SplitBuffer ins(b);
  simd::convert(simd::Level::kScalar, in, ins);
  for (const bool transpose : {false, true}) {
    for (const bool conjugate : {false, true}) {
      const simd::PackedOp packed =
          simd::pack_operator(op, transpose, conjugate);
      EXPECT_EQ(packed.rows, b);
      EXPECT_EQ(packed.cols, b);
      EXPECT_EQ(packed.nnz, b * b);
      EXPECT_TRUE(packed.dense_enough());
      // Dense reference: out[o] = sum_s m(o, s) in[s] with the transforms
      // applied to op first.
      CVec expected(static_cast<int>(b));
      for (long long o = 0; o < b; ++o) {
        Complex acc{0.0, 0.0};
        for (long long s = 0; s < b; ++s) {
          Complex entry = transpose ? op(static_cast<int>(s),
                                         static_cast<int>(o))
                                    : op(static_cast<int>(o),
                                         static_cast<int>(s));
          if (conjugate) entry = std::conj(entry);
          acc += entry * in[static_cast<int>(s)];
        }
        expected[static_cast<int>(o)] = acc;
      }
      for (const simd::Level level : supported_levels()) {
        SplitBuffer outs(b);
        simd::block_apply(level, packed, ins.re(), ins.im(), outs.re(),
                          outs.im());
        CVec out(static_cast<int>(b));
        simd::convert(simd::Level::kScalar, outs, out);
        EXPECT_LT(expected.linf_distance(out), 1e-12)
            << "transpose " << transpose << " conjugate " << conjugate
            << " level " << simd::level_name(level);
      }
    }
  }
}

TEST(SimdKernelTest, VectorTailsAreAddressInvariant) {
  // Regression: the axpy tails must be one fixed code path. When they were
  // plain scalar loops the compiler auto-vectorized them behind runtime
  // alias/alignment checks, so tail rounding depended on where the buffers
  // happened to be allocated — 1-ulp nondeterminism across identical runs.
  Rng rng(25);
  const long long n = 13;  // 1 full AVX-512 vector + 5-element tail
  const CVec x = random_vec(n, rng);
  const CVec y0 = random_vec(n, rng);
  constexpr long long kSlack = 8;
  for (const simd::Level level : supported_levels()) {
    std::vector<CVec> results;
    for (long long offset = 0; offset < kSlack; ++offset) {
      // Same data, different alignment phase for every array.
      SplitBuffer xs(n + kSlack);
      SplitBuffer ys(n + kSlack);
      for (long long i = 0; i < n; ++i) {
        xs.re()[offset + i] = x[static_cast<int>(i)].real();
        xs.im()[offset + i] = x[static_cast<int>(i)].imag();
        ys.re()[offset + i] = y0[static_cast<int>(i)].real();
        ys.im()[offset + i] = y0[static_cast<int>(i)].imag();
      }
      simd::axpy(level, 0.3, -0.7, xs.re() + offset, xs.im() + offset,
                 ys.re() + offset, ys.im() + offset, n);
      CVec y(static_cast<int>(n));
      for (long long i = 0; i < n; ++i) {
        y[static_cast<int>(i)] =
            Complex{ys.re()[offset + i], ys.im()[offset + i]};
      }
      results.push_back(std::move(y));
    }
    for (std::size_t k = 1; k < results.size(); ++k) {
      EXPECT_EQ(results[0].linf_distance(results[k]), 0.0)
          << "level " << simd::level_name(level) << " offset " << k;
    }
  }
}

TEST(SimdDispatchTest, LocalOpsAgreeAcrossLevelsWithinTolerance) {
  Rng rng(26);
  const RegisterShape shape({8, 4, 8});  // D = 256
  const CMat u = haar_unitary(4, rng);
  const CVec psi0 = haar_state(256, rng);
  const CMat rho0 = dqma::quantum::random_density(256, rng);
  const LocalOpPlan plan(shape, {1});

  const auto state_at = [&](simd::Level level) {
    const simd::LevelScope scope(level);
    CVec psi = psi0;
    dqma::quantum::apply_local(plan, u, psi);
    return psi;
  };
  const auto sandwich_at = [&](simd::Level level) {
    const simd::LevelScope scope(level);
    CMat rho = rho0;
    dqma::quantum::sandwich_local(plan, u, rho);
    return rho;
  };
  const CVec psi_ref = state_at(simd::Level::kScalar);
  const CMat rho_ref = sandwich_at(simd::Level::kScalar);
  for (const simd::Level level : supported_levels()) {
    EXPECT_LT(psi_ref.linf_distance(state_at(level)), 1e-10)
        << simd::level_name(level);
    EXPECT_LT(rho_ref.linf_distance(sandwich_at(level)), 1e-10)
        << simd::level_name(level);
  }
}

TEST(SimdDispatchTest, MatrixProductsAgreeAcrossLevelsWithinTolerance) {
  Rng rng(27);
  const CMat a = haar_unitary(48, rng);
  const CMat b = haar_unitary(48, rng);
  const auto products_at = [&](simd::Level level) {
    const simd::LevelScope scope(level);
    return std::vector<CMat>{a * b, a.adjoint_times(b), a.times_adjoint(b)};
  };
  const std::vector<CMat> reference = products_at(simd::Level::kScalar);
  for (const simd::Level level : supported_levels()) {
    const std::vector<CMat> got = products_at(level);
    for (std::size_t k = 0; k < reference.size(); ++k) {
      EXPECT_LT(reference[k].linf_distance(got[k]), 1e-10)
          << "product " << k << " level " << simd::level_name(level);
    }
  }
}

TEST(SimdDispatchTest, EachLevelIsByteDeterministicAcrossKernelThreads) {
  // The determinism contract per (level, layout): for a FIXED dispatch
  // level the kernels are byte-identical at any kernel thread count.
  Rng rng(28);
  const RegisterShape shape(std::vector<int>(6, 4));  // D = 4096
  const CMat u = haar_unitary(16, rng);
  const CMat u4 = haar_unitary(4, rng);
  const CVec psi0 = haar_state(4096, rng);
  const CMat rho0 = dqma::quantum::random_density(256, rng);
  const LocalOpPlan state_plan(shape, {1, 4});
  const RegisterShape rho_shape({16, 4, 4});
  const LocalOpPlan rho_plan(rho_shape, {1});
  const CMat ga = haar_unitary(96, rng);
  const CMat gb = haar_unitary(96, rng);
  for (const simd::Level level : supported_levels()) {
    const auto run_all = [&](int threads) {
      const simd::LevelScope level_scope(level);
      const dqma::sweep::KernelThreadScope thread_scope(threads);
      CVec psi = psi0;
      dqma::quantum::apply_local(state_plan, u, psi);
      CMat rho = rho0;
      dqma::quantum::sandwich_local(rho_plan, u4, rho);
      const CMat prod = ga * gb;
      return std::make_tuple(std::move(psi), std::move(rho),
                             std::move(prod));
    };
    const auto serial = run_all(1);
    for (const int threads : {3, 8}) {
      const auto threaded = run_all(threads);
      EXPECT_EQ(std::get<0>(serial).linf_distance(std::get<0>(threaded)), 0.0)
          << "apply_local, " << simd::level_name(level) << " x " << threads;
      EXPECT_EQ(std::get<1>(serial).linf_distance(std::get<1>(threaded)), 0.0)
          << "sandwich, " << simd::level_name(level) << " x " << threads;
      EXPECT_EQ(std::get<2>(serial).linf_distance(std::get<2>(threaded)), 0.0)
          << "gemm, " << simd::level_name(level) << " x " << threads;
    }
  }
}

TEST(SimdDispatchTest, SoaViewsAgreeWithAosViews) {
  // The same apply through an SoA-backed view lands within rounding of the
  // AoS path at every level (layouts are cross-validated, not byte-pinned).
  Rng rng(29);
  const RegisterShape shape({4, 4, 4, 4});  // D = 256
  const CMat u = haar_unitary(16, rng);
  const CVec psi0 = haar_state(256, rng);
  const LocalOpPlan plan(shape, {0, 2});
  for (const simd::Level level : supported_levels()) {
    const simd::LevelScope scope(level);
    CVec aos = psi0;
    dqma::quantum::apply_local(plan, u, aos);

    SplitBuffer soa(256);
    simd::convert(level, psi0, soa);
    dqma::quantum::apply_local(plan, u, MutComplexView(soa));
    CVec back(256);
    simd::convert(level, soa, back);
    EXPECT_LT(aos.linf_distance(back), 1e-10) << simd::level_name(level);
  }
}

TEST(LinearOperatorTest, DenseAndCallbackBackendsAgreeWithEigh) {
  Rng rng(30);
  const CMat rho = dqma::quantum::random_density(64, rng);
  const double exact = dqma::linalg::eigh(rho).values.back();
  const dqma::linalg::DenseOperator dense(rho);
  EXPECT_EQ(dense.dim(), 64);
  const dqma::linalg::CallbackOperator callback(
      [&rho](const CVec& x) {
        const dqma::linalg::DenseOperator op(rho);
        return op.apply(x);
      },
      64);
  const double via_dense = dqma::linalg::max_eigenvalue_psd(dense);
  const double via_callback = dqma::linalg::max_eigenvalue_psd(callback);
  EXPECT_NEAR(via_dense, exact, 1e-8);
  EXPECT_NEAR(via_callback, exact, 1e-8);
  CVec vec(64);
  const double via_pair = dqma::linalg::top_eigenpair_psd(dense, vec);
  EXPECT_NEAR(via_pair, exact, 1e-8);
  EXPECT_NEAR(vec.norm(), 1.0, 1e-9);
  // The eigenvector satisfies rho v = lambda v.
  const CVec rv = dense.apply(vec);
  EXPECT_LT(rv.linf_distance(vec * Complex{via_pair, 0.0}), 1e-6);
  // Dense apply agrees with the scalar matvec at every level.
  const CVec x = haar_state(64, rng);
  CVec reference(64);
  {
    const simd::LevelScope scope(simd::Level::kScalar);
    reference = dqma::linalg::DenseOperator(rho).apply(x);
  }
  for (const simd::Level level : supported_levels()) {
    const simd::LevelScope scope(level);
    const CVec got = dqma::linalg::DenseOperator(rho).apply(x);
    EXPECT_LT(reference.linf_distance(got), 1e-11)
        << simd::level_name(level);
  }
}

}  // namespace
